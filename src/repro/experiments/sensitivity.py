"""Experiment E12: sensitivity of decisions to cost-function error.

How wrong can the fitted constants be before the partitioner starts making
materially worse choices?  Each trial multiplies every Eq 1 constant (and
the router slope) by independent random factors in ``[1-eps, 1+eps]``,
reruns the partitioner, and scores the chosen configuration under the
*unperturbed* model.  Reported per perturbation level: how often the
decision changed, and the worst/mean *regret* (extra ``T_c`` relative to
the unperturbed optimum).

A small regret at ±20% supports the paper's implicit robustness claim: the
method needs cost functions that *rank* configurations correctly, not
perfect ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.apps.stencil import stencil_computation
from repro.benchmarking import CostDatabase
from repro.benchmarking.costfuncs import CommCostFunction, LinearByteCost
from repro.experiments.calibration import fitted_cost_database
from repro.experiments.report import format_table
from repro.hardware.presets import paper_testbed
from repro.partition import (
    CycleEstimator,
    ProcessorConfiguration,
    gather_available_resources,
    order_by_power,
    partition,
)
from repro.partition.search_parallel import sweep

__all__ = ["perturb_database", "SensitivityResult", "sensitivity_analysis", "sensitivity_report"]


def perturb_database(
    db: CostDatabase, epsilon: float, rng: np.random.Generator
) -> CostDatabase:
    """A copy of ``db`` with every constant scaled by U[1-eps, 1+eps]."""
    if not 0.0 <= epsilon < 1.0:
        raise ValueError(f"epsilon must be in [0, 1), got {epsilon}")

    def factor() -> float:
        return float(rng.uniform(1.0 - epsilon, 1.0 + epsilon))

    out = CostDatabase(router_extra_station=db.router_extra_station)
    for fn in db.comm.values():
        out.add_comm(
            CommCostFunction(
                cluster=fn.cluster,
                topology=fn.topology,
                c1=fn.c1 * factor(),
                c2=fn.c2 * factor(),
                c3=fn.c3 * factor(),
                c4=fn.c4 * factor(),
                abs_bandwidth_quirk=fn.abs_bandwidth_quirk,
            )
        )
    for fn in db.router.values():
        out.add_router(
            LinearByteCost(
                src=fn.src,
                dst=fn.dst,
                kind=fn.kind,
                intercept_ms=fn.intercept_ms * factor(),
                slope_ms_per_byte=fn.slope_ms_per_byte * factor(),
            )
        )
    for fn in db.coerce.values():
        out.add_coerce(fn)
    return out


@dataclass(frozen=True)
class SensitivityResult:
    """Decision stability under one perturbation level."""

    epsilon: float
    trials: int
    decision_changed: int
    mean_regret: float
    max_regret: float


def _sensitivity_level(
    db_json: str,
    epsilon: float,
    trials: int,
    n: int,
    overlap: bool,
    seed: int,
) -> SensitivityResult:
    """One perturbation level, self-contained (picklable for the sweep).

    Rebuilds the database from JSON and the computation from primitives so
    the worker carries no closures across the process boundary.
    """
    db = CostDatabase.from_json(db_json)
    rng = np.random.default_rng(seed)
    resources = gather_available_resources(paper_testbed())
    ordered = order_by_power(resources)
    comp = stencil_computation(n, overlap=overlap)
    truth = CycleEstimator(comp, db)
    baseline = partition(comp, resources, db)
    baseline_t = truth.t_cycle(
        ProcessorConfiguration(ordered, tuple(baseline.config.counts))
    )
    changed = 0
    regrets = []
    for _ in range(trials):
        noisy = perturb_database(db, epsilon, rng)
        decision = partition(comp, resources, noisy)
        counts = tuple(decision.config.counts)
        true_t = truth.t_cycle(ProcessorConfiguration(ordered, counts))
        regret = (true_t - baseline_t) / baseline_t
        regrets.append(max(regret, 0.0))
        if decision.counts_by_name() != baseline.counts_by_name():
            changed += 1
    return SensitivityResult(
        epsilon=epsilon,
        trials=trials,
        decision_changed=changed,
        mean_regret=float(np.mean(regrets)),
        max_regret=float(np.max(regrets)),
    )


def sensitivity_analysis(
    db: Optional[CostDatabase] = None,
    *,
    n: int = 600,
    overlap: bool = False,
    epsilons: Sequence[float] = (0.05, 0.1, 0.2, 0.4),
    trials: int = 20,
    seed: int = 0,
    workers: Optional[int] = None,
) -> list[SensitivityResult]:
    """Run the perturbation study for one workload.

    Serial by default.  With ``workers`` the perturbation levels fan out
    across processes; each level then draws from its own seeded RNG stream
    (``seed`` + level index), so parallel results are reproducible for a
    given ``(seed, epsilons)`` but differ from the serial single-stream
    draw order.
    """
    db = db or fitted_cost_database()
    if workers is not None and workers > 1:
        db_json = db.to_json()
        return sweep(
            _sensitivity_level,
            [
                (db_json, epsilon, trials, n, overlap, seed + i)
                for i, epsilon in enumerate(epsilons)
            ],
            workers=workers,
        )
    rng = np.random.default_rng(seed)
    resources = gather_available_resources(paper_testbed())
    ordered = order_by_power(resources)
    comp = stencil_computation(n, overlap=overlap)
    truth = CycleEstimator(comp, db)
    baseline = partition(comp, resources, db)
    baseline_t = truth.t_cycle(
        ProcessorConfiguration(ordered, tuple(baseline.config.counts))
    )
    results = []
    for epsilon in epsilons:
        changed = 0
        regrets = []
        for _ in range(trials):
            noisy = perturb_database(db, epsilon, rng)
            decision = partition(comp, resources, noisy)
            counts = tuple(decision.config.counts)
            true_t = truth.t_cycle(ProcessorConfiguration(ordered, counts))
            regret = (true_t - baseline_t) / baseline_t
            regrets.append(max(regret, 0.0))
            if decision.counts_by_name() != baseline.counts_by_name():
                changed += 1
        results.append(
            SensitivityResult(
                epsilon=epsilon,
                trials=trials,
                decision_changed=changed,
                mean_regret=float(np.mean(regrets)),
                max_regret=float(np.max(regrets)),
            )
        )
    return results


def sensitivity_report(
    results: Optional[list[SensitivityResult]] = None,
    *,
    workers: Optional[int] = None,
) -> str:
    """Formatted sensitivity table."""
    results = results if results is not None else sensitivity_analysis(workers=workers)
    rows = [
        [
            f"±{100 * r.epsilon:.0f}%",
            r.trials,
            f"{r.decision_changed}/{r.trials}",
            f"{100 * r.mean_regret:.2f}%",
            f"{100 * r.max_regret:.2f}%",
        ]
        for r in results
    ]
    return format_table(
        ["perturbation", "trials", "decision changed", "mean regret", "max regret"],
        rows,
        title="E12: decision sensitivity to cost-constant error (STEN-1, N=600)",
    )
