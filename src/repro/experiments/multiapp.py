"""Experiment E15: decision quality across every application.

The paper validates the partitioner on the stencil (and asserts success on
GE).  This experiment runs the same protocol on *all* the applications in
the suite — Jacobi stencil, SOR, heat (convergence-driven), GE, power
method, N-body — each with its own topology and annotation structure: the
partitioner predicts a configuration, the candidate grid is simulated, and
the prediction is scored by its simulated gap to the best candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache, partial
from typing import Callable, Optional, Sequence

import numpy as np

from repro.apps.gauss import gauss_computation, run_gauss
from repro.apps.heat import heat_computation, run_heat
from repro.apps.nbody import nbody_computation, run_nbody
from repro.apps.powermethod import power_computation, run_power_method
from repro.apps.sor import run_sor, sor_computation
from repro.apps.stencil import run_stencil, stencil_computation
from repro.benchmarking import CostDatabase, Workbench, build_cost_database
from repro.experiments.report import format_table
from repro.hardware.presets import paper_testbed
from repro.mmps import MMPS
from repro.partition import (
    balanced_partition_vector,
    gather_available_resources,
    partition,
)
from repro.partition.search_parallel import sweep
from repro.spmd import Topology

__all__ = ["AppCase", "CASES", "decision_quality", "multiapp_report"]

CANDIDATES = ((1, 0), (2, 0), (4, 0), (6, 0), (6, 2), (6, 6))


@lru_cache(maxsize=1)
def _full_database(seed: int = 0) -> CostDatabase:
    """Cost functions for every topology the apps use (cached per process)."""
    workbench = Workbench(lambda: paper_testbed(seed=seed))
    return build_cost_database(
        workbench,
        clusters=["sparc2", "ipc"],
        topologies=[Topology.ONE_D, Topology.RING, Topology.BROADCAST, Topology.TREE],
        p_values=(2, 3, 4, 6),
        b_values=(120, 480, 1200, 2400, 4800),
        cycles=3,
    )


def _procs(net, p1, p2):
    return list(net.cluster("sparc2"))[:p1] + list(net.cluster("ipc"))[:p2]


def _vec(p1, p2, n):
    return balanced_partition_vector([0.3] * p1 + [0.6] * p2, n)


@dataclass(frozen=True)
class AppCase:
    """One application workload: annotations plus a simulator.

    ``simulate`` is a :func:`functools.partial` over a module-level worker
    (never a closure) so the candidate grid can fan out across processes.
    """

    name: str
    computation_factory: Callable[[], object]
    simulate: Callable[[int, int], float]


def _stencil_cell(n, iterations, overlap, p1, p2):
    net = paper_testbed()
    return run_stencil(
        MMPS(net), _procs(net, p1, p2), _vec(p1, p2, n), n,
        iterations=iterations, overlap=overlap,
    ).elapsed_ms


def _sor_cell(n, iterations, p1, p2):
    net = paper_testbed()
    return run_sor(
        MMPS(net), _procs(net, p1, p2), _vec(p1, p2, n), n, iterations=iterations
    ).elapsed_ms


def _heat_cell(n, p1, p2):
    net = paper_testbed()
    return run_heat(
        MMPS(net), _procs(net, p1, p2), _vec(p1, p2, n), n, tol=1e-3
    ).elapsed_ms


def _gauss_cell(n, p1, p2):
    net = paper_testbed()
    return run_gauss(
        MMPS(net), _procs(net, p1, p2), _vec(p1, p2, n), n
    ).elapsed_ms


@lru_cache(maxsize=4)
def _power_matrix(n: int) -> np.ndarray:
    rng = np.random.default_rng(0)
    a = rng.random((n, n))
    return (a + a.T) / 2 + n * np.eye(n)


def _power_cell(n, p1, p2):
    net = paper_testbed()
    return run_power_method(
        MMPS(net), _procs(net, p1, p2), _vec(p1, p2, n), _power_matrix(n),
        tol=1e-6, max_iterations=40,
    ).elapsed_ms


def _nbody_cell(n, steps, p1, p2):
    positions = np.linspace(0.0, 500.0, n)
    net = paper_testbed()
    return run_nbody(
        MMPS(net), _procs(net, p1, p2), _vec(p1, p2, n), positions, steps=steps
    ).elapsed_ms


def _simulate_stencil(n, iterations, overlap):
    return partial(_stencil_cell, n, iterations, overlap)


def _simulate_sor(n, iterations):
    return partial(_sor_cell, n, iterations)


def _simulate_heat(n):
    return partial(_heat_cell, n)


def _simulate_gauss(n):
    return partial(_gauss_cell, n)


def _simulate_power(n):
    return partial(_power_cell, n)


def _simulate_nbody(n, steps):
    return partial(_nbody_cell, n, steps)


CASES: tuple[AppCase, ...] = (
    AppCase("stencil N=600", lambda: stencil_computation(600, overlap=False),
            _simulate_stencil(600, 10, False)),
    AppCase("sten-2 N=600", lambda: stencil_computation(600, overlap=True),
            _simulate_stencil(600, 10, True)),
    AppCase("sor N=600", lambda: sor_computation(600), _simulate_sor(600, 10)),
    AppCase("heat N=300", lambda: heat_computation(300, expected_iterations=11),
            _simulate_heat(300)),
    AppCase("gauss N=256", lambda: gauss_computation(256), _simulate_gauss(256)),
    AppCase("power N=400", lambda: power_computation(400, expected_iterations=40),
            _simulate_power(400)),
    AppCase("nbody N=1200", lambda: nbody_computation(1200, steps=3),
            _simulate_nbody(1200, 3)),
)


@dataclass(frozen=True)
class QualityRow:
    """One application's prediction-vs-best outcome, for both models.

    ``dominant`` follows the paper's dominant-phase single-round rule;
    ``extended`` uses the all-phases estimator with rounds annotations.
    """

    app: str
    dominant: tuple[int, int]
    dominant_ms: float
    extended: tuple[int, int]
    extended_ms: float
    best: tuple[int, int]
    best_ms: float

    @property
    def dominant_gap(self) -> float:
        """Relative excess of the dominant-phase prediction over the best."""
        return (self.dominant_ms - self.best_ms) / self.best_ms

    @property
    def extended_gap(self) -> float:
        """Relative excess of the all-phases prediction over the best."""
        return (self.extended_ms - self.best_ms) / self.best_ms


def _choose(comp, resources, db, all_phases: bool) -> tuple[int, int]:
    from repro.partition import CycleEstimator, ProcessorConfiguration, order_by_power

    if not all_phases:
        decision = partition(comp, resources, db)
        counts = decision.counts_by_name()
        return counts.get("sparc2", 0), counts.get("ipc", 0)
    # The all-phases estimator drives the same prefix search manually.
    ordered = order_by_power(resources)
    est = CycleEstimator(comp, db, all_phases=True)
    best, best_t = None, float("inf")
    prefix = [0] * len(ordered)
    for k, res in enumerate(ordered):
        for p in range(1, res.n_available + 1):
            counts = prefix[:k] + [p] + prefix[k + 1 :]
            t = est.t_cycle(ProcessorConfiguration(ordered, counts))
            if t < best_t:
                best, best_t = counts, t
        prefix[k] = res.n_available
    by_name = {r.name: c for r, c in zip(ordered, best)}
    return by_name.get("sparc2", 0), by_name.get("ipc", 0)


def decision_quality(
    cases: Sequence[AppCase] = CASES,
    *,
    candidates: Sequence[tuple[int, int]] = CANDIDATES,
    db: Optional[CostDatabase] = None,
    workers: Optional[int] = None,
) -> list[QualityRow]:
    """Predict under both models, simulate the candidate grid, score.

    ``workers`` fans each application's candidate simulations out across
    processes (the simulators are picklable partials by construction).
    """
    db = db or _full_database()
    net = paper_testbed()
    resources = gather_available_resources(net)
    rows = []
    for case in cases:
        comp = case.computation_factory()
        dominant = _choose(comp, resources, db, all_phases=False)
        extended = _choose(comp, resources, db, all_phases=True)
        grid = list(candidates)
        for cfg in (dominant, extended):
            if cfg not in grid:
                grid.append(cfg)
        simulated = sweep(case.simulate, grid, workers=workers)
        elapsed = dict(zip(grid, simulated))
        best = min(elapsed, key=elapsed.get)
        rows.append(
            QualityRow(
                app=case.name,
                dominant=dominant,
                dominant_ms=elapsed[dominant],
                extended=extended,
                extended_ms=elapsed[extended],
                best=best,
                best_ms=elapsed[best],
            )
        )
    return rows


def multiapp_report(
    rows: Optional[list[QualityRow]] = None, *, workers: Optional[int] = None
) -> str:
    """The E15 artifact: paper model vs extended model, per application."""
    rows = rows if rows is not None else decision_quality(workers=workers)
    table = [
        [
            r.app,
            f"({r.dominant[0]},{r.dominant[1]})",
            f"{100 * r.dominant_gap:+.1f}%",
            f"({r.extended[0]},{r.extended[1]})",
            f"{100 * r.extended_gap:+.1f}%",
            f"({r.best[0]},{r.best[1]})",
            f"{r.best_ms:.0f}",
        ]
        for r in rows
    ]
    return format_table(
        [
            "application",
            "dominant-phase",
            "gap",
            "all-phases",
            "gap",
            "sim best",
            "best ms",
        ],
        table,
        title=(
            "E15: decision quality — the paper's dominant-phase model vs the "
            "extended all-phases/rounds model (gap = simulated excess over best)"
        ),
    )
