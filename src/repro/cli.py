"""Command-line interface: regenerate the paper's artifacts.

::

    python -m repro table1            # partitioning decisions (Table 1)
    python -m repro table2            # elapsed-time grid + stars (Table 2)
    python -m repro fig3 --n 300      # the T_c(P) curve
    python -m repro calibrate         # fitted vs published cost functions
    python -m repro ablations         # decomposition/ordering/placement
    python -m repro all -o report.txt # everything, also written to a file
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional, Sequence

__all__ = ["main", "build_parser"]


def _table1(args) -> str:
    from repro.experiments import fitted_cost_database, paper_cost_database, table1_report

    if args.source == "paper":
        return table1_report(paper_cost_database(), source="paper")
    if args.source == "fitted":
        return table1_report(fitted_cost_database(), source="fitted")
    return (
        table1_report(paper_cost_database(), source="paper")
        + "\n\n"
        + table1_report(fitted_cost_database(), source="fitted")
    )


def _table2(args) -> str:
    from repro.experiments import reproduce_table2, table2_report

    repro_ = reproduce_table2(workers=getattr(args, "workers", None))
    text = table2_report(repro_)
    return text + f"\n\nprediction hits: {repro_.prediction_hits()}/{repro_.rows_count()} rows"


def _fig3(args) -> str:
    from repro.experiments import fig3_report

    sizes = [args.n] if args.n else [60, 300, 1200]
    workers = getattr(args, "workers", None)
    return "\n\n".join(
        fig3_report(n, overlap=args.overlap, workers=workers) for n in sizes
    )


def _calibrate(args) -> str:
    from repro.experiments import calibration_report

    return calibration_report()


def _ablations(args) -> str:
    from repro.experiments import ablation_report

    return ablation_report()


def _accuracy(args) -> str:
    from repro.experiments import accuracy_report

    return accuracy_report()


def _sensitivity(args) -> str:
    from repro.experiments import sensitivity_report

    return sensitivity_report(workers=getattr(args, "workers", None))


def _timeline(args) -> str:
    from repro.apps.stencil import run_stencil
    from repro.experiments import ascii_timeline
    from repro.hardware.presets import paper_testbed
    from repro.mmps import MMPS
    from repro.partition import balanced_partition_vector

    net = paper_testbed()
    mmps = MMPS(net)
    p1, p2 = args.p1, args.p2
    procs = list(net.cluster("sparc2"))[:p1] + list(net.cluster("ipc"))[:p2]
    vec = balanced_partition_vector([0.3] * p1 + [0.6] * p2, args.n)
    result = run_stencil(
        mmps, procs, vec, args.n, iterations=args.iterations, overlap=args.overlap
    )
    variant = "STEN-2" if args.overlap else "STEN-1"
    return ascii_timeline(
        result.run, title=f"{variant} N={args.n} on ({p1},{p2})"
    )


def _speedup(args) -> str:
    from repro.experiments import speedup_report

    return speedup_report(workers=getattr(args, "workers", None))


def _multiapp(args) -> str:
    from repro.experiments.multiapp import multiapp_report

    return multiapp_report(workers=getattr(args, "workers", None))


def _bench_partition(args) -> str:
    import json

    from repro.partition.perfbench import perf_payload, perf_report, run_perf

    if args.engine == "all":
        engines = ("scalar", "batch", "array")
    elif args.engine == "both":
        engines = ("scalar", "batch")
    else:
        engines = (args.engine,)
    cmp = run_perf(
        tuple(args.clusters),
        n=args.n,
        repeat=args.repeat,
        engines=engines,
        prune=not args.no_prune,
    )
    text = perf_report(cmp)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(perf_payload(cmp), fh, indent=2)
            fh.write("\n")
        text += f"\n\n[json written to {args.json}]"
    if getattr(args, "metrics_out", None):
        from repro.telemetry import MetricsRegistry, Telemetry

        tel = Telemetry(metrics=MetricsRegistry())
        # Bench figures are wall-clock measurements: host domain.
        for r in cmp.results:
            prefix = f"bench.partition.{r.engine}"
            tel.metrics.gauge(f"{prefix}.best_wall_s", domain="host").set(r.best_wall_s)
            tel.metrics.gauge(f"{prefix}.configs_per_s", domain="host").set(
                r.configs_per_s
            )
            tel.metrics.gauge(f"{prefix}.configs_evaluated", domain="host").set(
                r.configs_evaluated
            )
        if cmp.speedup is not None:
            tel.metrics.gauge(
                "bench.partition.speedup_batch_over_scalar", domain="host"
            ).set(cmp.speedup)
        if cmp.speedup_array_over_batch is not None:
            tel.metrics.gauge(
                "bench.partition.speedup_array_over_batch", domain="host"
            ).set(cmp.speedup_array_over_batch)
        tel.dump(args.metrics_out, meta={"command": "bench-partition"})
        text += f"\n[metrics written to {args.metrics_out}]"
    return text


def _bench_widearea(args) -> str:
    import json

    from repro.partition.wideareabench import (
        DEFAULT_SIZES,
        QUICK_SIZES,
        run_widearea,
        widearea_payload,
        widearea_report,
    )

    registry = None
    tel = None
    if getattr(args, "metrics_out", None):
        from repro.telemetry import MetricsRegistry, Telemetry

        tel = Telemetry(metrics=MetricsRegistry())
        registry = tel.metrics
    if args.sizes:
        sizes = tuple(args.sizes)
    else:
        sizes = QUICK_SIZES if args.quick else DEFAULT_SIZES
    bench = run_widearea(
        sizes,
        n=args.n,
        repeat=1 if args.quick else args.repeat,
        seed=args.seed,
        metrics=registry,
    )
    text = widearea_report(bench)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(widearea_payload(bench), fh, indent=2)
            fh.write("\n")
        text += f"\n\n[json written to {args.json}]"
    if tel is not None:
        # Bench figures are wall-clock measurements: host domain.  The
        # decide.collapse.* instruments the engines registered land in the
        # same dump, so `repro metrics-summary` shows both.
        for r in bench.sizes:
            prefix = f"bench.widearea.{r.n_clusters}"
            tel.metrics.gauge(f"{prefix}.decide_ms", domain="host").set(r.decide_ms)
            tel.metrics.gauge(f"{prefix}.configs_evaluated", domain="host").set(
                r.configs_evaluated
            )
        tel.dump(args.metrics_out, meta={"command": "bench-widearea"})
        text += f"\n[metrics written to {args.metrics_out}]"
    return text


def _serve(args) -> str:
    import asyncio

    from repro.server.admission import AdmissionLimits
    from repro.server.service import PartitionServer, ServerConfig, resolve_pool
    from repro.telemetry import MetricsRegistry, Telemetry

    tel = Telemetry(metrics=MetricsRegistry())
    net, cost_db = resolve_pool(args.pool, seed=args.seed)
    config = ServerConfig(
        batch_window_ms=args.batch_window_ms,
        limits=AdmissionLimits(
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            tenant_rate=args.tenant_rate,
        ),
        cache_entries=args.cache_entries,
        max_requests=args.max_requests,
    )
    server = PartitionServer.for_network(
        net, cost_db, config=config, metrics=tel.metrics
    )

    async def _main() -> None:
        metrics_http = None
        if args.metrics_port is not None:
            from repro.server.metricshttp import MetricsHTTPServer

            metrics_http = MetricsHTTPServer(tel.metrics)
            mhost, mport = await metrics_http.start(args.host, args.metrics_port)
            print(f"[serve] metrics at http://{mhost}:{mport}/metrics", flush=True)

        def _announce(host: str, port: int) -> None:
            # Flushed immediately so wrappers (the CI smoke job) can wait
            # for readiness and scrape the bound port.
            print(
                f"[serve] listening on {host}:{port} "
                f"(pool {args.pool}, {len(server.base)} clusters)",
                flush=True,
            )

        try:
            await server.serve_until_shutdown(
                args.host, args.port, on_started=_announce
            )
        finally:
            if metrics_http is not None:
                await metrics_http.close()

    asyncio.run(_main())
    stats = server.coalescer.stats
    text = (
        f"served {server.served} requests "
        f"({stats.searches} fresh searches, {stats.memo_hits} memo groups, "
        f"{stats.fanned_out} fanned out; "
        f"{server.admission.shed_overloaded + server.admission.shed_rate_limited} shed)"
    )
    if getattr(args, "metrics_out", None):
        tel.dump(args.metrics_out, meta={"command": "serve"})
        text += f"\n[metrics written to {args.metrics_out}]"
    return text


def _bench_serve(args) -> str:
    import json

    from repro.server.servebench import (
        DEFAULT_CLIENTS,
        QUICK_CLIENTS,
        run_serve_bench,
        serve_payload,
        serve_report,
    )

    registry = None
    tel = None
    if getattr(args, "metrics_out", None):
        from repro.telemetry import MetricsRegistry, Telemetry

        tel = Telemetry(metrics=MetricsRegistry())
        registry = tel.metrics
    if args.clients is not None:
        clients = args.clients
    else:
        clients = QUICK_CLIENTS if args.quick else DEFAULT_CLIENTS
    bench = run_serve_bench(
        clients=clients,
        requests_per_client=args.requests,
        pool=args.pool,
        n=args.n,
        batch_window_ms=args.batch_window_ms,
        metrics=registry,
    )
    text = serve_report(bench)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(serve_payload(bench), fh, indent=2)
            fh.write("\n")
        text += f"\n\n[json written to {args.json}]"
    if tel is not None:
        # Headline figures as host gauges; the serve.* instruments the
        # server itself registered land in the same dump.
        tel.metrics.gauge("bench.serve.decisions_per_s", domain="host").set(
            bench.decisions_per_s
        )
        tel.metrics.gauge("bench.serve.speedup_vs_baseline", domain="host").set(
            bench.speedup_vs_baseline
        )
        tel.metrics.gauge("bench.serve.p99_ms", domain="host").set(bench.p99_ms)
        tel.dump(args.metrics_out, meta={"command": "bench-serve"})
        text += f"\n[metrics written to {args.metrics_out}]"
    return text


def _run_dynamic(args) -> str:
    import json

    from repro.apps.stencil import stencil_computation
    from repro.experiments.paper import paper_cost_database
    from repro.hardware.presets import paper_testbed
    from repro.partition.runtime import ManualClock, PartitionRuntime, RuntimePolicy
    from repro.sim.failures import FailureSchedule, LoadSchedule

    metrics_out = getattr(args, "metrics_out", None)

    def supervised(failures=None, loads=None, instrument=False):
        from repro.telemetry import Telemetry

        clock = ManualClock()
        tel = (
            Telemetry.for_sim(lambda: clock.now)
            if (instrument and metrics_out)
            else None
        )
        runtime = PartitionRuntime(
            paper_testbed(),
            stencil_computation(args.n, overlap=False, cycles=1),
            paper_cost_database(),
            policy=RuntimePolicy(
                imbalance_threshold=args.threshold,
                engine=getattr(args, "decide_engine", "scalar"),
                adaptive=args.adaptive,
                slowdown_research=args.slowdown_research,
                hysteresis_k=args.hysteresis_k,
                clear_threshold=args.clear_threshold,
                migrate_k=args.migrate_k,
                divergence_bound=args.divergence_bound,
            ),
            clock=clock,
            failures=failures,
            loads=loads,
            telemetry=tel,
        )
        return runtime.run(args.epochs), tel, clock

    # Metrics instrument the run being studied: the perturbed run when a
    # failure or load schedule is requested, otherwise the clean run itself.
    will_inject = (
        args.fail_at is not None or args.mtbf is not None or args.load_at is not None
    )
    clean, tel, clock = supervised(instrument=not will_inject)
    schedule = None
    if args.fail_at is not None:
        # Default victim: the second rank of the bootstrap decomposition —
        # deterministic and guaranteed to be doing work when it dies.
        victims = args.kill if args.kill else [clean.final_proc_ids[1]]
        schedule = FailureSchedule.fail_at(args.fail_at, victims)
    elif args.mtbf is not None:
        schedule = FailureSchedule.from_mtbf(
            list(clean.final_proc_ids[1:]),
            mtbf_epochs=args.mtbf,
            horizon_epochs=args.epochs,
            seed=args.seed,
            max_failures=args.max_failures,
        )
    loads = None
    if args.load_at is not None:
        # Same default-victim rule as --fail-at, but the node slows down
        # instead of dying — the signal the adaptive controller watches.
        slow = args.slow if args.slow else [clean.final_proc_ids[1]]
        loads = LoadSchedule(
            tuple(
                event
                for pid in slow
                for event in LoadSchedule.step(
                    pid, at_epoch=args.load_at, load=args.load
                ).events
            )
        )

    lines = [
        f"supervised run: STEN-1 N={args.n}, {args.epochs} epochs",
        f"clean: answer={clean.answer} elapsed={clean.elapsed_ms:.2f} ms "
        f"vector={list(clean.final_vector)}",
    ]
    if schedule is None and loads is None:
        lines.append(
            "no perturbation schedule (use --fail-at, --mtbf, or --load-at)"
        )
        result = clean
    else:
        result, tel, clock = supervised(
            failures=schedule, loads=loads, instrument=True
        )
        parity = "ok" if result.answer == clean.answer else "BROKEN"
        if schedule is not None:
            lines.append(
                f"failures: {[(e.at_epoch, e.proc_id) for e in schedule.events]}"
            )
        if loads is not None:
            lines.append(
                "loads: "
                f"{[(e.at_epoch, e.proc_id, e.load) for e in loads.events]}"
            )
        lines += [
            f"perturbed: answer={result.answer} elapsed={result.elapsed_ms:.2f} ms "
            f"vector={list(result.final_vector)}",
            f"answer parity: {parity}",
            f"repartitions={result.repartitions} moved_pdus={result.moved_pdus_total} "
            f"replayed_pdus={result.replayed_pdus}",
        ]
        if args.adaptive:
            stats = result.adaptive_stats
            lines.append(
                "adaptive: "
                + " ".join(f"{key}={stats[key]}" for key in sorted(stats))
            )
        lines += ["", "audit trail:"]
        lines += [
            "  " + json.dumps(record) for record in result.audit.to_records()
        ]
        if result.answer != clean.answer:
            raise SystemExit("\n".join(lines))
    if args.validate_cycles:
        from repro.experiments.resilience import validate_decomposition

        report = validate_decomposition(
            result.final_proc_ids,
            result.final_vector,
            args.n,
            args.validate_cycles,
            mode=args.engine,
            telemetry=tel,
        )
        lines.append(
            f"validation ({args.engine}): {report.cycles} cycles, "
            f"probed={report.probed_cycles} "
            f"fast_forwarded={report.fast_forwarded_cycles} "
            f"clock={report.clock_ms:.2f} ms"
        )
    if args.audit_json:
        with open(args.audit_json, "w") as fh:
            json.dump(result.audit.to_records(), fh, indent=2)
            fh.write("\n")
        lines.append(f"[audit trail written to {args.audit_json}]")
    if metrics_out:
        tel.dump(
            metrics_out,
            stamp=clock.now,
            meta={
                "command": "run-dynamic",
                "n": args.n,
                "epochs": args.epochs,
                "engine": args.engine,
                "validate_cycles": args.validate_cycles,
            },
        )
        lines.append(f"[metrics written to {metrics_out}]")
    return "\n".join(lines)


def _lint(args) -> tuple:
    from pathlib import Path

    from repro.analysis import LintError, REPORTERS, analyze_paths

    def _split(values):
        out = []
        for value in values or []:
            out.extend(part.strip() for part in value.split(",") if part.strip())
        return out or None

    cache_path = None
    if not args.no_cache:
        cache_path = Path(args.cache)
    try:
        findings = analyze_paths(
            [Path(p) for p in (args.paths or ["src"])],
            select=_split(args.select),
            ignore=_split(args.ignore),
            exclude=_split(args.exclude),
            cache_path=cache_path,
        )
    except LintError as exc:
        raise SystemExit(f"repro lint: {exc}")
    text = REPORTERS[args.format](findings)
    return text, (1 if findings else 0)


def _resilience(args) -> str:
    from repro.experiments import resilience_report

    tel = None
    if getattr(args, "metrics_out", None):
        from repro.telemetry import MetricsRegistry, Telemetry

        tel = Telemetry(metrics=MetricsRegistry())
    text = resilience_report(
        n=args.n,
        epochs=args.epochs,
        mtbf_epochs=args.mtbf,
        seed=args.seed,
        workers=getattr(args, "workers", None),
        validate_cycles=args.validate_cycles,
        validate_mode=args.validate_mode,
        decide_engine=getattr(args, "decide_engine", "scalar"),
        telemetry=tel,
    )
    if tel is not None:
        tel.dump(args.metrics_out, meta={"command": "resilience"})
        text += f"\n[metrics written to {args.metrics_out}]"
    return text


def _churn(args) -> str:
    import json

    from repro.experiments.resilience import churn_payload, churn_report

    tel = None
    if getattr(args, "metrics_out", None):
        from repro.telemetry import MetricsRegistry, Telemetry

        tel = Telemetry(metrics=MetricsRegistry())
    text, rows = churn_report(
        n=args.n,
        epochs=args.epochs,
        workers=getattr(args, "workers", None),
        telemetry=tel,
    )
    if any(not row.answer_parity for row in rows):
        raise SystemExit(text + "\nchurn: answer parity BROKEN")
    if args.json:
        payload = churn_payload(rows, n=args.n)
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        text += f"\n[record written to {args.json}]"
    if tel is not None:
        tel.dump(args.metrics_out, meta={"command": "churn"})
        text += f"\n[metrics written to {args.metrics_out}]"
    return text


def _bench_sim(args) -> str:
    import json

    from repro.experiments.simbench import (
        run_sim_perf,
        sim_perf_payload,
        sim_perf_report,
    )

    cmp = run_sim_perf(
        n=args.n,
        cycles=args.cycles,
        config=(args.p1, args.p2),
        repeat=args.repeat,
        grid=not args.no_grid,
        grid_n=args.grid_n,
        grid_epochs=args.grid_epochs,
        grid_cycles=args.grid_cycles,
        workers=getattr(args, "workers", None),
    )
    text = sim_perf_report(cmp)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(sim_perf_payload(cmp), fh, indent=2)
            fh.write("\n")
        text += f"\n\n[json written to {args.json}]"
    if getattr(args, "metrics_out", None):
        from repro.telemetry import MetricsRegistry, Telemetry

        tel = Telemetry(metrics=MetricsRegistry())
        payload = sim_perf_payload(cmp)
        # Bench figures are wall-clock measurements: host domain.
        for mode, row in payload["modes"].items():
            prefix = f"bench.sim.{mode}"
            tel.metrics.gauge(f"{prefix}.best_wall_s", domain="host").set(
                row["best_wall_s"]
            )
            tel.metrics.gauge(f"{prefix}.probed_cycles", domain="host").set(
                row["probed_cycles"]
            )
            tel.metrics.gauge(f"{prefix}.fast_forwarded_cycles", domain="host").set(
                row["fast_forwarded_cycles"]
            )
        tel.metrics.gauge("bench.sim.parity_ok", domain="host").set(
            int(payload["parity_ok"])
        )
        if payload.get("speedup_fast_over_event") is not None:
            tel.metrics.gauge("bench.sim.speedup_fast_over_event", domain="host").set(
                payload["speedup_fast_over_event"]
            )
        tel.dump(args.metrics_out, meta={"command": "bench-sim"})
        text += f"\n[metrics written to {args.metrics_out}]"
    return text


def _metrics_summary(args) -> str:
    from repro.telemetry import prometheus_text, read_jsonl, summary_table

    data = read_jsonl(args.file)
    if args.format == "prom":
        return prometheus_text(data["metrics"]).rstrip("\n")
    return summary_table(data)


def _all(args) -> str:
    sections = [
        _calibrate(args),
        _table1(argparse.Namespace(source="both")),
        _table2(args),
        _fig3(argparse.Namespace(n=None, overlap=False)),
        _ablations(args),
        _accuracy(args),
        _sensitivity(args),
        _speedup(args),
    ]
    return "\n\n".join(sections)


def _add_workers_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan simulations out across N processes (default: serial)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The :mod:`argparse` command tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Weissman & Grimshaw (HPDC 1994): tables, figures, calibration.",
    )
    parser.add_argument(
        "-o", "--output", metavar="FILE", help="also write the report to FILE"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="Table 1: partitioning decisions")
    p1.add_argument(
        "--source",
        choices=("paper", "fitted", "both"),
        default="both",
        help="which cost functions drive the partitioner",
    )
    p1.set_defaults(func=_table1)

    p2 = sub.add_parser("table2", help="Table 2: simulated elapsed-time grid")
    _add_workers_flag(p2)
    p2.set_defaults(func=_table2)

    p3 = sub.add_parser("fig3", help="Fig 3: the T_c(P) curve")
    p3.add_argument("--n", type=int, default=None, help="problem size (default: 60, 300, 1200)")
    p3.add_argument("--overlap", action="store_true", help="use STEN-2 instead of STEN-1")
    _add_workers_flag(p3)
    p3.set_defaults(func=_fig3)

    p4 = sub.add_parser("calibrate", help="offline cost-function fitting report")
    p4.set_defaults(func=_calibrate)

    p5 = sub.add_parser("ablations", help="decomposition/ordering/placement ablations")
    p5.set_defaults(func=_ablations)

    p6 = sub.add_parser("all", help="every artifact in one report")
    p6.set_defaults(func=_all)

    p7 = sub.add_parser("accuracy", help="E11: cost-model accuracy grid")
    p7.set_defaults(func=_accuracy)

    p8 = sub.add_parser("sensitivity", help="E12: decision sensitivity to constant error")
    _add_workers_flag(p8)
    p8.set_defaults(func=_sensitivity)

    p10 = sub.add_parser("speedup", help="E14: speedup/efficiency per application")
    _add_workers_flag(p10)
    p10.set_defaults(func=_speedup)

    p11 = sub.add_parser("multiapp", help="E15: decision quality across all applications")
    _add_workers_flag(p11)
    p11.set_defaults(func=_multiapp)

    p12 = sub.add_parser(
        "bench-partition",
        help="time the exhaustive oracle: scalar vs batch vs array engines",
    )
    p12.add_argument(
        "--clusters",
        type=int,
        nargs="+",
        default=[8, 8, 8],
        metavar="SIZE",
        help="processors per synthetic cluster (default: 8 8 8)",
    )
    p12.add_argument("--n", type=int, default=600, help="stencil problem size")
    p12.add_argument("--repeat", type=int, default=3, help="timing repeats per engine")
    p12.add_argument(
        "--engine",
        choices=("scalar", "batch", "array", "both", "all"),
        default="all",
        help="which evaluation path(s) to time ('both' = scalar+batch, "
        "'all' adds the preallocated array engine)",
    )
    p12.add_argument(
        "--no-prune",
        action="store_true",
        help="disable the batch engine's branch-and-bound prune",
    )
    p12.add_argument(
        "--json", metavar="FILE", help="also write the machine-readable record to FILE"
    )
    p12.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write headline gauges as a telemetry JSONL export",
    )
    p12.set_defaults(func=_bench_partition)

    p19 = sub.add_parser(
        "bench-widearea",
        help="time equivalence-class collapsed decisions on wide-area pools",
    )
    p19.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        metavar="SITES",
        help="pool sizes in logical clusters (default: 64 256 1000)",
    )
    p19.add_argument("--n", type=int, default=6000, help="stencil problem size")
    p19.add_argument("--repeat", type=int, default=3, help="timing repeats per size")
    p19.add_argument("--seed", type=int, default=7, help="pool template seed")
    p19.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: 64/256-site pools, one repeat",
    )
    p19.add_argument(
        "--json", metavar="FILE", help="also write the machine-readable record to FILE"
    )
    p19.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write headline gauges plus the decide.collapse.* instruments "
        "as a telemetry JSONL export",
    )
    p19.set_defaults(func=_bench_widearea)

    p20 = sub.add_parser(
        "serve",
        help="run the multi-tenant NDJSON partition decision server",
    )
    p20.add_argument("--host", default="127.0.0.1", help="bind address")
    p20.add_argument("--port", type=int, default=7641, help="TCP port (0 = ephemeral)")
    p20.add_argument(
        "--pool",
        default="paper",
        help="resource pool: 'paper', 'wide:K', or 'synthetic:A,B,C'",
    )
    p20.add_argument("--seed", type=int, default=0, help="pool seed (wide:K pools)")
    p20.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve Prometheus text at http://HOST:PORT/metrics",
    )
    p20.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="how long a tick collects requests before deciding",
    )
    p20.add_argument(
        "--max-inflight", type=int, default=512, help="admitted-request cap"
    )
    p20.add_argument(
        "--max-queue", type=int, default=2048, help="per-tick queue-depth cap"
    )
    p20.add_argument(
        "--tenant-rate",
        type=float,
        default=0.0,
        help="per-tenant requests/s rate cap (0 = unlimited)",
    )
    p20.add_argument(
        "--cache-entries",
        type=int,
        default=4096,
        help="SearchCache LRU bound per workload engine",
    )
    p20.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help="drain and exit after serving N requests (CI smoke mode)",
    )
    p20.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write the serve.* instruments as a telemetry JSONL export at shutdown",
    )
    p20.set_defaults(func=_serve)

    p21 = sub.add_parser(
        "bench-serve",
        help="benchmark the decision server against one-search-per-request",
    )
    p21.add_argument(
        "--clients",
        type=int,
        default=None,
        help="simulated logical clients (default: 10000, or 1000 with --quick)",
    )
    p21.add_argument(
        "--requests", type=int, default=1, help="requests per logical client"
    )
    p21.add_argument(
        "--pool",
        default="synthetic:32,32,32",
        help="resource pool: 'paper', 'wide:K', or 'synthetic:A,B,C'",
    )
    p21.add_argument("--n", type=int, default=600, help="stencil/SOR problem size")
    p21.add_argument(
        "--batch-window-ms", type=float, default=2.0, help="server batch window"
    )
    p21.add_argument(
        "--quick", action="store_true", help="CI smoke mode: 1000 clients"
    )
    p21.add_argument(
        "--json", metavar="FILE", help="also write the machine-readable record to FILE"
    )
    p21.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write headline gauges plus the serve.* instruments as a "
        "telemetry JSONL export",
    )
    p21.set_defaults(func=_bench_serve)

    p13 = sub.add_parser(
        "run-dynamic",
        help="supervised gather/partition/execute run with failure injection",
    )
    p13.add_argument("--n", type=int, default=512, help="stencil problem size")
    p13.add_argument("--epochs", type=int, default=8, help="supervised epochs")
    p13.add_argument(
        "--fail-at",
        type=int,
        default=None,
        metavar="EPOCH",
        help="crash a node at the start of EPOCH (victim: --kill, or rank 1)",
    )
    p13.add_argument(
        "--kill",
        type=int,
        nargs="+",
        default=None,
        metavar="PROC_ID",
        help="processor id(s) to crash at --fail-at",
    )
    p13.add_argument(
        "--mtbf",
        type=float,
        default=None,
        metavar="EPOCHS",
        help="draw seeded geometric failures with this mean time between failures",
    )
    p13.add_argument("--max-failures", type=int, default=2)
    p13.add_argument("--seed", type=int, default=0)
    p13.add_argument(
        "--threshold", type=float, default=1.25, help="slowdown rebalance threshold"
    )
    p13.add_argument(
        "--load-at",
        type=int,
        default=None,
        metavar="EPOCH",
        help="put sustained external load on a node at the start of EPOCH "
        "(victim: --slow, or rank 1) — slows it without killing it",
    )
    p13.add_argument(
        "--load",
        type=float,
        default=0.3,
        metavar="FRACTION",
        help="external load fraction in [0, 1) for --load-at (default: 0.3)",
    )
    p13.add_argument(
        "--slow",
        type=int,
        nargs="+",
        default=None,
        metavar="PROC_ID",
        help="processor id(s) to load at --load-at",
    )
    p13.add_argument(
        "--adaptive",
        action="store_true",
        help="hysteresis-debounced incremental repartitioning: migrate-k "
        "deltas with a cost-aware veto, full re-search only on divergence",
    )
    p13.add_argument(
        "--slowdown-research",
        action="store_true",
        help="answer every confirmed slowdown with a full gather + re-search "
        "(the always-research baseline the adaptive policy is judged against)",
    )
    p13.add_argument(
        "--hysteresis-k",
        type=int,
        default=3,
        metavar="K",
        help="consecutive over-threshold epochs before the adaptive "
        "controller trips (default: 3)",
    )
    p13.add_argument(
        "--clear-threshold",
        type=float,
        default=1.1,
        help="completion-skew level at which a tripped controller re-arms "
        "(must sit below --threshold; default: 1.1)",
    )
    p13.add_argument(
        "--migrate-k",
        type=int,
        default=8,
        metavar="K",
        help="max PDUs an incremental repartition may move (default: 8)",
    )
    p13.add_argument(
        "--divergence-bound",
        type=float,
        default=1.5,
        help="epoch-time ratio vs the best epoch since the last full search "
        "beyond which the adaptive policy falls back to a full re-search "
        "(default: 1.5)",
    )
    p13.add_argument(
        "--audit-json", metavar="FILE", help="write the audit trail to FILE"
    )
    p13.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write metrics + spans of the studied run as telemetry JSONL",
    )
    p13.add_argument(
        "--validate-cycles",
        type=int,
        default=0,
        metavar="CYCLES",
        help="also event-execute the final decomposition for CYCLES stencil "
        "cycles at message-system fidelity (default: off)",
    )
    p13.add_argument(
        "--engine",
        choices=("fast", "event"),
        default="fast",
        help="validation engine: fast-forward confirmed steady-state "
        "windows, or event-simulate every cycle",
    )
    p13.add_argument(
        "--decide-engine",
        choices=("scalar", "array"),
        default="scalar",
        help="probe engine for the supervisor's repartition searches "
        "(identical decisions; 'array' prefetches candidate segments "
        "through a preallocated workspace)",
    )
    p13.set_defaults(func=_run_dynamic)

    p14 = sub.add_parser(
        "resilience", help="E16: supervised recovery vs fail-stop restart grid"
    )
    p14.add_argument("--n", type=int, default=512)
    p14.add_argument("--epochs", type=int, default=10)
    p14.add_argument("--mtbf", type=float, default=12.0)
    p14.add_argument("--seed", type=int, default=0)
    p14.add_argument(
        "--validate-cycles",
        type=int,
        default=0,
        metavar="CYCLES",
        help="also event-execute each scenario's final decomposition for "
        "CYCLES stencil cycles (default: closed-form model only)",
    )
    p14.add_argument(
        "--validate-mode",
        choices=("fast", "event"),
        default="fast",
        help="fast-forward confirmed steady-state cycles, or simulate all",
    )
    p14.add_argument(
        "--decide-engine",
        choices=("scalar", "array"),
        default="scalar",
        help="cost-model engine for the supervisor's repartition decisions "
        "(identical decisions, different throughput)",
    )
    p14.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write the grid's summary gauges as a telemetry JSONL export",
    )
    _add_workers_flag(p14)
    p14.set_defaults(func=_resilience)

    p18 = sub.add_parser(
        "churn",
        help="E16b: adaptive repartitioning vs always-research under load churn",
    )
    p18.add_argument("--n", type=int, default=512)
    p18.add_argument("--epochs", type=int, default=48)
    p18.add_argument(
        "--json", metavar="FILE", help="also write the machine-readable record to FILE"
    )
    p18.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write the grid's summary gauges as a telemetry JSONL export",
    )
    _add_workers_flag(p18)
    p18.set_defaults(func=_churn)

    p16 = sub.add_parser(
        "bench-sim",
        help="time the fast-forward engine vs event-level simulation",
    )
    p16.add_argument("--n", type=int, default=300, help="stencil problem size")
    p16.add_argument("--cycles", type=int, default=200, help="cycles per run")
    p16.add_argument("--p1", type=int, default=6, help="Sparc2 count")
    p16.add_argument("--p2", type=int, default=0, help="IPC count")
    p16.add_argument("--repeat", type=int, default=3, help="timing repeats per mode")
    p16.add_argument(
        "--no-grid",
        action="store_true",
        help="skip timing the E16 grid's decomposition-validation pass",
    )
    p16.add_argument("--grid-n", type=int, default=256)
    p16.add_argument("--grid-epochs", type=int, default=6)
    p16.add_argument("--grid-cycles", type=int, default=100)
    p16.add_argument(
        "--json", metavar="FILE", help="also write the machine-readable record to FILE"
    )
    p16.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write headline gauges as a telemetry JSONL export",
    )
    _add_workers_flag(p16)
    p16.set_defaults(func=_bench_sim)

    p17 = sub.add_parser(
        "metrics-summary",
        help="render a telemetry JSONL export (from --metrics-out)",
    )
    p17.add_argument("file", metavar="FILE", help="telemetry JSONL export to read")
    p17.add_argument(
        "--format",
        choices=("table", "prom"),
        default="table",
        help="human table, or Prometheus text exposition (default: table)",
    )
    p17.set_defaults(func=_metrics_summary)

    p15 = sub.add_parser(
        "lint",
        help="static analysis: unit safety, callback purity, determinism, engine parity",
        description=(
            "Run the repro.analysis static-analysis rules over Python sources. "
            "Rules: unit-consistency (dimensional analysis over the repro.units "
            "conventions — the Eq-3 erratum shape), callback-purity (phase "
            "annotation callbacks must be pure/deterministic), sim-determinism "
            "(entropy via sim/rng.py named streams, time via injectable clocks), "
            "engine-parity (no constants duplicated between the scalar and batch "
            "cost engines), telemetry-determinism (sim-critical code records "
            "sim-domain metrics/spans only), clock-domain (flow-sensitive taint: "
            "sim-clock and host-clock values never added/compared), unit-flow "
            "(units flow through function signatures via the call graph), "
            "workspace-escape (borrowed ArrayWorkspace/ring-buffer views must "
            "not outlive the next overwrite without a copy). "
            "Suppress one line with '# repro: noqa[rule-name]'; a directive "
            "anywhere in a multi-line statement covers the whole statement. "
            "Results are cached incrementally by content hash in "
            ".repro-lint-cache.json (--no-cache to bypass). "
            "Exits 1 when findings remain, 0 on a clean tree."
        ),
    )
    p15.add_argument(
        "paths",
        nargs="*",
        default=None,
        metavar="PATH",
        help="files or directories to analyze (default: src)",
    )
    p15.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    p15.add_argument(
        "--select",
        action="append",
        metavar="RULE[,RULE]",
        help="run only these rules, or 'all' (repeatable, comma-separable)",
    )
    p15.add_argument(
        "--ignore",
        action="append",
        metavar="RULE[,RULE]",
        help="skip these rules (repeatable, comma-separable)",
    )
    p15.add_argument(
        "--exclude",
        action="append",
        metavar="FRAGMENT[,FRAGMENT]",
        help=(
            "skip files whose path contains a fragment "
            "(e.g. tests/analysis/fixtures; repeatable, comma-separable)"
        ),
    )
    p15.add_argument(
        "--cache",
        default=".repro-lint-cache.json",
        metavar="PATH",
        help="incremental result cache location (default: %(default)s)",
    )
    p15.add_argument(
        "--no-cache",
        action="store_true",
        help="analyze everything from scratch, reading and writing no cache",
    )
    p15.set_defaults(func=_lint)

    p9 = sub.add_parser("timeline", help="ASCII Gantt of one stencil run")
    p9.add_argument("--n", type=int, default=300)
    p9.add_argument("--p1", type=int, default=6, help="Sparc2 count")
    p9.add_argument("--p2", type=int, default=0, help="IPC count")
    p9.add_argument("--iterations", type=int, default=5)
    p9.add_argument("--overlap", action="store_true")
    p9.set_defaults(func=_timeline)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    func: Callable = args.func
    result = func(args)
    # Commands return either plain text (exit 0) or (text, exit_code).
    if isinstance(result, tuple):
        text, code = result
    else:
        text, code = result, 0
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"\n[written to {args.output}]", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
