"""A ring-topology particle application (a non-matrix PDU kind).

The paper's PDU definition explicitly includes "a collection of particles in
a particle simulation".  This app exercises that: each task owns ``A_i``
particles (the PDU is one particle) and computes all-pairs interactions by
the classic *ring pipeline*: the local block circulates around the ring, and
every task accumulates interactions between its own particles and each
visiting block.

Per cycle (one time step): ``size-1`` ring shifts of position blocks,
``O(local · total)`` interaction work, then a local position update.
Annotations: computational complexity per PDU = ``2 · num_particles`` fp
ops (accumulate against every other particle), communication complexity =
the largest circulating block in bytes, topology = ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import PartitionError
from repro.hardware.processor import Processor
from repro.mmps.system import MMPS
from repro.model.computation import DataParallelComputation
from repro.model.phases import CommunicationPhase, ComputationPhase
from repro.model.vector import PartitionVector
from repro.spmd.runtime import RunResult, SPMDRun
from repro.spmd.topology import Topology

__all__ = ["NBodyProblem", "nbody_computation", "run_nbody", "reference_potentials"]

#: Bytes per particle position (one float64).
PARTICLE_BYTES = 8
#: Softening that keeps 1/r finite for coincident particles.
SOFTENING = 1e-3


@dataclass(frozen=True)
class NBodyProblem:
    """Problem parameters: particle count and time steps."""

    num_particles: int
    steps: int = 1

    def __post_init__(self) -> None:
        if self.num_particles < 2:
            raise ValueError("need at least two particles")
        if self.steps < 1:
            raise ValueError("need at least one step")


def nbody_computation(num_particles: int, steps: int = 1) -> DataParallelComputation:
    """Annotations for the ring-pipelined particle interaction code."""
    problem = NBodyProblem(num_particles, steps)
    return DataParallelComputation(
        name="NBODY",
        problem=problem,
        num_pdus=lambda p: p.num_particles,
        computation_phases=[
            ComputationPhase(
                "interactions", complexity=lambda p: 2.0 * p.num_particles, op_kind="fp"
            )
        ],
        communication_phases=[
            CommunicationPhase(
                "ring-shift",
                topology=Topology.RING,
                complexity=lambda p: float(PARTICLE_BYTES * p.num_particles),
            )
        ],
        cycles=steps,
    )


def reference_potentials(positions: np.ndarray) -> np.ndarray:
    """All-pairs softened 1/r potential sums — the sequential oracle."""
    x = positions.astype(np.float64)
    diff = np.abs(x[:, None] - x[None, :]) + SOFTENING
    np.fill_diagonal(diff, np.inf)
    return (1.0 / diff).sum(axis=1)


@dataclass
class NBodyResult:
    """Outcome of one distributed particle run."""

    run: RunResult
    potentials: Optional[np.ndarray]

    @property
    def elapsed_ms(self) -> float:
        """Completion time of the run."""
        return self.run.elapsed_ms


def run_nbody(
    mmps: MMPS,
    processors: Sequence[Processor],
    vector: PartitionVector,
    positions: np.ndarray,
    *,
    steps: int = 1,
) -> NBodyResult:
    """Run the ring-pipelined interaction code over the given partition.

    Returns per-particle potential sums (in original particle order) for
    verification against :func:`reference_potentials` (of the final-step
    positions when ``steps > 1``; positions stay fixed in this kernel, so
    any step count yields the same potentials — steps scale only the cost).
    """
    num = positions.shape[0]
    if vector.total != num:
        raise PartitionError(f"vector covers {vector.total} particles but got {num}")
    if vector.size != len(processors):
        raise PartitionError(
            f"vector has {vector.size} entries for {len(processors)} processors"
        )
    if any(c < 1 for c in vector):
        raise PartitionError("every chosen processor needs at least one particle")
    bounds = np.concatenate([[0], np.cumsum(list(vector))]).astype(int)
    blocks = [positions[bounds[i] : bounds[i + 1]].astype(np.float64) for i in range(vector.size)]

    def interactions(own: np.ndarray, other: np.ndarray, same: bool) -> np.ndarray:
        diff = np.abs(own[:, None] - other[None, :]) + SOFTENING
        if same:
            np.fill_diagonal(diff, np.inf)
        return (1.0 / diff).sum(axis=1)

    def body(ctx):
        own = blocks[ctx.rank]
        acc = np.zeros(len(own))
        left = (ctx.rank - 1) % ctx.size
        right = (ctx.rank + 1) % ctx.size
        for _step in range(ctx.run.steps):  # type: ignore[attr-defined]
            acc[:] = 0.0
            visiting = own.copy()
            visiting_rank = ctx.rank
            for shift in range(ctx.size):
                yield from ctx.compute(2 * len(own) * len(visiting), kind="fp")
                acc += interactions(own, visiting, same=(visiting_rank == ctx.rank))
                if ctx.size > 1 and shift < ctx.size - 1:
                    nbytes = PARTICLE_BYTES * len(visiting)
                    yield from ctx.isend(right, nbytes, tag=f"s{shift}", payload=(visiting_rank, visiting))
                    msg = yield from ctx.recv(from_rank=left, tag=f"s{shift}")
                    visiting_rank, visiting = msg.payload
            ctx.mark_cycle()
        return acc

    run = SPMDRun(mmps, processors, body, Topology.RING)
    run.steps = steps  # exposed to bodies via ctx.run
    result = run.execute()
    potentials = np.concatenate(result.task_values)
    return NBodyResult(run=result, potentials=potentials)
