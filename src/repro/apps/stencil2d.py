"""A 2-D block-decomposed five-point stencil (the TWO_D topology end to end).

The 1-D row decomposition (the paper's evaluation) sends ``2·4N`` border
bytes per task per cycle regardless of the processor count; a 2-D block
decomposition sends ``4·4N/√P`` — asymptotically less, which is why 2-D is
in the paper's topology vocabulary.  This module implements the block
version for a homogeneous processor set (heterogeneous 2-D blocking is out
of the paper's scope), verifies it against the sequential solver, and
exposes the per-task communication volumes so the 1-D/2-D comparison can be
benchmarked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.apps.stencil import BYTES_PER_POINT, OPS_PER_POINT, sequential_stencil
from repro.errors import PartitionError
from repro.hardware.processor import Processor
from repro.mmps.system import MMPS
from repro.spmd.runtime import RunResult, SPMDRun
from repro.spmd.topology import Topology, grid_shape

__all__ = ["run_stencil_2d", "block_bounds", "border_bytes_2d", "border_bytes_1d"]


def block_bounds(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``n`` indices into ``parts`` near-equal contiguous (start, stop)."""
    if parts < 1 or parts > n:
        raise PartitionError(f"cannot split {n} into {parts} parts")
    base, extra = divmod(n, parts)
    bounds = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def border_bytes_1d(n: int) -> int:
    """Bytes one interior task sends per cycle under row decomposition."""
    return 2 * BYTES_PER_POINT * n


def border_bytes_2d(n: int, p: int) -> int:
    """Bytes one interior task sends per cycle under block decomposition."""
    rows, cols = grid_shape(p)
    return 2 * BYTES_PER_POINT * (-(-n // rows)) + 2 * BYTES_PER_POINT * (-(-n // cols))


@dataclass
class Stencil2DResult:
    """Outcome of one 2-D block stencil execution."""

    run: RunResult
    grid: Optional[np.ndarray]
    bytes_sent_per_task: list[int]

    @property
    def elapsed_ms(self) -> float:
        """Completion time of the run."""
        return self.run.elapsed_ms


def run_stencil_2d(
    mmps: MMPS,
    processors: Sequence[Processor],
    n: int,
    *,
    iterations: int = 10,
    initial_grid: Optional[np.ndarray] = None,
) -> Stencil2DResult:
    """Run the block-decomposed stencil on a homogeneous processor set.

    Tasks form a ``rows x cols`` grid (near-square factorization of the
    processor count); each owns a contiguous block and exchanges row/column
    halos with its 4-neighbourhood every iteration.
    """
    p = len(processors)
    if p < 1:
        raise PartitionError("need at least one processor")
    specs = {proc.spec.name for proc in processors}
    if len(specs) > 1:
        raise PartitionError(
            f"2-D blocking supports homogeneous sets only, got {sorted(specs)}"
        )
    rows, cols = grid_shape(p)
    row_bounds = block_bounds(n, rows)
    col_bounds = block_bounds(n, cols)
    numeric = initial_grid is not None
    if numeric and initial_grid.shape != (n, n):
        raise ValueError(f"initial grid must be {n}x{n}, got {initial_grid.shape}")

    blocks: list[Optional[np.ndarray]] = []
    for rank in range(p):
        r, c = divmod(rank, cols)
        (r0, r1), (c0, c1) = row_bounds[r], col_bounds[c]
        if numeric:
            # Halo-padded block.
            block = np.zeros((r1 - r0 + 2, c1 - c0 + 2), dtype=np.float64)
            block[1:-1, 1:-1] = initial_grid[r0:r1, c0:c1]
            if r0 > 0:
                block[0, 1:-1] = initial_grid[r0 - 1, c0:c1]
            if r1 < n:
                block[-1, 1:-1] = initial_grid[r1, c0:c1]
            if c0 > 0:
                block[1:-1, 0] = initial_grid[r0:r1, c0 - 1]
            if c1 < n:
                block[1:-1, -1] = initial_grid[r0:r1, c1]
            blocks.append(block)
        else:
            blocks.append(None)

    def body(ctx):
        r, c = divmod(ctx.rank, cols)
        (r0, r1), (c0, c1) = row_bounds[r], col_bounds[c]
        height, width = r1 - r0, c1 - c0
        local = blocks[ctx.rank]
        north = ctx.rank - cols if r > 0 else None
        south = ctx.rank + cols if r < rows - 1 else None
        west = ctx.rank - 1 if c > 0 else None
        east = ctx.rank + 1 if c < cols - 1 else None
        for _ in range(iterations):
            sends = [
                (north, "s", BYTES_PER_POINT * width, lambda: local[1, 1:-1].copy()),
                (south, "n", BYTES_PER_POINT * width, lambda: local[-2, 1:-1].copy()),
                (west, "e", BYTES_PER_POINT * height, lambda: local[1:-1, 1].copy()),
                (east, "w", BYTES_PER_POINT * height, lambda: local[1:-1, -2].copy()),
            ]
            for peer, tag, nbytes, grab in sends:
                if peer is not None:
                    payload = grab() if local is not None else None
                    yield from ctx.isend(peer, nbytes, tag=tag, payload=payload)
            old = local.copy() if local is not None else None
            recvs = [
                (north, "n", lambda m: old.__setitem__((0, slice(1, -1)), m)),
                (south, "s", lambda m: old.__setitem__((-1, slice(1, -1)), m)),
                (west, "w", lambda m: old.__setitem__((slice(1, -1), 0), m)),
                (east, "e", lambda m: old.__setitem__((slice(1, -1), -1), m)),
            ]
            for peer, tag, install in recvs:
                if peer is not None:
                    msg = yield from ctx.recv(from_rank=peer, tag=tag)
                    if old is not None:
                        install(msg.payload)
            yield from ctx.compute(OPS_PER_POINT * height * width)
            if local is not None:
                _jacobi_block(old, local, n, r0, c0)
            ctx.mark_cycle()
        return ctx.endpoint.stats.bytes_sent

    run = SPMDRun(mmps, processors, body, Topology.TWO_D)
    result = run.execute()
    grid = None
    if numeric:
        grid = np.zeros((n, n))
        for rank in range(p):
            r, c = divmod(rank, cols)
            (r0, r1), (c0, c1) = row_bounds[r], col_bounds[c]
            grid[r0:r1, c0:c1] = blocks[rank][1:-1, 1:-1]
    return Stencil2DResult(
        run=result, grid=grid, bytes_sent_per_task=list(result.task_values)
    )


def _jacobi_block(old: np.ndarray, new: np.ndarray, n: int, r0: int, c0: int) -> None:
    """Jacobi-update a halo-padded block, skipping global boundary cells."""
    height = old.shape[0] - 2
    width = old.shape[1] - 2
    updated = 0.25 * (
        old[:-2, 1:-1] + old[2:, 1:-1] + old[1:-1, :-2] + old[1:-1, 2:]
    )
    new[1:-1, 1:-1] = updated
    # Restore Dirichlet cells on the global boundary.
    for k in range(height):
        gk = r0 + k
        if gk == 0 or gk == n - 1:
            new[k + 1, 1:-1] = old[k + 1, 1:-1]
    for k in range(width):
        gk = c0 + k
        if gk == 0 or gk == n - 1:
            new[1:-1, k + 1] = old[1:-1, k + 1]
