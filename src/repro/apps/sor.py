"""Red-black SOR — two communication phases per iteration.

Successive over-relaxation with red-black ordering is the classic
faster-converging sibling of the Jacobi stencil: each iteration updates the
red points (using their black neighbours), exchanges borders, then updates
the black points (using the *fresh* red values), and exchanges again.  Two
border exchanges per iteration of ``4N`` bytes each — the annotations carry
both communication phases, and the dominant-phase rule picks either (they
tie), exactly the §4 machinery exercised on a multi-phase cycle.

Within one colour every update is independent, so the distributed sweep is
bit-identical to the sequential one — verified in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.apps.stencil import BYTES_PER_POINT
from repro.errors import PartitionError
from repro.hardware.processor import Processor
from repro.mmps.system import MMPS
from repro.model.computation import DataParallelComputation
from repro.model.phases import CommunicationPhase, ComputationPhase
from repro.model.vector import PartitionVector
from repro.spmd.runtime import RunResult, SPMDRun
from repro.spmd.topology import Topology

__all__ = ["sor_computation", "run_sor", "sequential_sor"]

#: SOR point update: 4 adds, 2 muls, 1 sub ≈ 7 flops; half the points/sweep.
OPS_PER_POINT_SWEEP = 3.5


def sor_computation(n: int, *, omega: float = 1.5, cycles: int = 10) -> DataParallelComputation:
    """Annotations: two half-sweeps (``3.5N`` ops/PDU each) and two border
    exchanges (``4N`` bytes each) per iteration."""
    problem = type("SORProblem", (), {"n": n, "omega": omega})()
    return DataParallelComputation(
        name="SOR",
        problem=problem,
        num_pdus=lambda p: p.n,
        computation_phases=[
            ComputationPhase("red-sweep", complexity=lambda p: OPS_PER_POINT_SWEEP * p.n),
            ComputationPhase("black-sweep", complexity=lambda p: OPS_PER_POINT_SWEEP * p.n),
        ],
        communication_phases=[
            CommunicationPhase(
                "red-borders", Topology.ONE_D, complexity=lambda p: BYTES_PER_POINT * p.n
            ),
            CommunicationPhase(
                "black-borders", Topology.ONE_D, complexity=lambda p: BYTES_PER_POINT * p.n
            ),
        ],
        cycles=cycles,
    )


def _color_mask(rows: int, cols: int, global_start: int, parity: int) -> np.ndarray:
    """Mask of points with (global_row + col) % 2 == parity, interior cols."""
    gi = np.arange(global_start, global_start + rows)[:, None]
    j = np.arange(cols)[None, :]
    return (gi + j) % 2 == parity


def _sor_halfsweep(
    local: np.ndarray, n: int, global_start: int, parity: int, omega: float
) -> None:
    """In-place SOR update of one colour inside a halo-padded block."""
    rows = local.shape[0] - 2
    mask = _color_mask(rows, n, global_start, parity)
    # Zero out global boundary rows/cols from the update mask.
    gi = np.arange(global_start, global_start + rows)
    mask[(gi == 0) | (gi == n - 1), :] = False
    mask[:, 0] = False
    mask[:, -1] = False
    interior = local[1:-1]
    neighbours = 0.25 * (
        local[:-2, :] + local[2:, :]
        + np.pad(interior[:, :-1], ((0, 0), (1, 0)))
        + np.pad(interior[:, 1:], ((0, 0), (0, 1)))
    )
    updated = interior + omega * (neighbours - interior)
    interior[mask] = updated[mask]


def sequential_sor(
    grid: np.ndarray, iterations: int, *, omega: float = 1.5
) -> np.ndarray:
    """Reference red-black SOR sweep (in place, red then black)."""
    n = grid.shape[0]
    padded = np.zeros((n + 2, n), dtype=np.float64)
    padded[1:-1] = grid
    for _ in range(iterations):
        for parity in (0, 1):
            _sor_halfsweep(padded, n, 0, parity, omega)
    return padded[1:-1]


@dataclass
class SORResult:
    """Outcome of one distributed SOR execution."""

    run: RunResult
    grid: Optional[np.ndarray]

    @property
    def elapsed_ms(self) -> float:
        """Completion time of the run."""
        return self.run.elapsed_ms


def run_sor(
    mmps: MMPS,
    processors: Sequence[Processor],
    vector: PartitionVector,
    n: int,
    *,
    iterations: int = 10,
    omega: float = 1.5,
    initial_grid: Optional[np.ndarray] = None,
) -> SORResult:
    """Distributed red-black SOR over a row partition."""
    counts = list(vector)
    if len(counts) != len(processors):
        raise PartitionError(
            f"vector has {len(counts)} entries for {len(processors)} processors"
        )
    if vector.total != n:
        raise PartitionError(f"vector covers {vector.total} rows but N={n}")
    if any(c < 1 for c in counts):
        raise PartitionError("every processor needs at least one row")
    starts = np.concatenate([[0], np.cumsum(counts)]).astype(int)
    numeric = initial_grid is not None
    blocks: list[Optional[np.ndarray]] = []
    for i, count in enumerate(counts):
        if numeric:
            block = np.zeros((count + 2, n), dtype=np.float64)
            block[1:-1] = initial_grid[starts[i] : starts[i] + count]
            blocks.append(block)
        else:
            blocks.append(None)
    border_bytes = BYTES_PER_POINT * n

    def body(ctx):
        rows = counts[ctx.rank]
        local = blocks[ctx.rank]
        north = ctx.rank - 1 if ctx.rank > 0 else None
        south = ctx.rank + 1 if ctx.rank < ctx.size - 1 else None

        def exchange(tag):
            if north is not None:
                payload = local[1].copy() if local is not None else None
                yield from ctx.isend(north, border_bytes, tag="s" + tag, payload=payload)
            if south is not None:
                payload = local[-2].copy() if local is not None else None
                yield from ctx.isend(south, border_bytes, tag="n" + tag, payload=payload)
            if north is not None:
                msg = yield from ctx.recv(from_rank=north, tag="n" + tag)
                if local is not None:
                    local[0] = msg.payload
            if south is not None:
                msg = yield from ctx.recv(from_rank=south, tag="s" + tag)
                if local is not None:
                    local[-1] = msg.payload

        for it in range(iterations):
            for parity in (0, 1):
                yield from exchange(f"{it}:{parity}")
                yield from ctx.compute(OPS_PER_POINT_SWEEP * n * rows)
                if local is not None:
                    _sor_halfsweep(local, n, starts[ctx.rank], parity, omega)
            ctx.mark_cycle()
        return rows

    run = SPMDRun(mmps, processors, body, Topology.ONE_D)
    result = run.execute()
    grid = None
    if numeric:
        grid = np.vstack([b[1:-1] for b in blocks if b is not None])
    return SORResult(run=result, grid=grid)
