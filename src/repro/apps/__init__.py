"""Data parallel applications used in the evaluation.

Paper applications:

* :mod:`repro.apps.stencil` — the §6 five-point stencil (STEN-1/STEN-2);
* :mod:`repro.apps.gauss` — Gaussian elimination with partial pivoting
  (the non-uniform-complexity application §6 mentions).

Suite extensions (each verified against a sequential oracle):

* :mod:`repro.apps.nbody` — ring-pipelined particles (non-matrix PDUs);
* :mod:`repro.apps.heat` — convergence-driven relaxation (two comm phases);
* :mod:`repro.apps.sor` — red-black SOR (two exchanges per iteration);
* :mod:`repro.apps.powermethod` — dominant eigenvalue via ring all-gather;
* :mod:`repro.apps.stencil2d` — 2-D block decomposition (TWO_D topology);
* :mod:`repro.apps.stencil_dynamic` — §7's dynamic repartitioning.
"""

from repro.apps.sor import run_sor, sequential_sor, sor_computation
from repro.apps.powermethod import (
    PowerProblem,
    PowerResult,
    power_computation,
    reference_dominant_eigenvalue,
    run_power_method,
)
from repro.apps.heat import (
    HeatProblem,
    HeatResult,
    heat_computation,
    run_heat,
    sequential_heat,
)
from repro.apps.stencil2d import (
    Stencil2DResult,
    block_bounds,
    border_bytes_1d,
    border_bytes_2d,
    run_stencil_2d,
)
from repro.apps.stencil_dynamic import (
    DynamicStencilResult,
    LoadEvent,
    apply_load_schedule,
    run_stencil_dynamic,
)
from repro.apps.gauss import (
    GaussProblem,
    GaussResult,
    gauss_computation,
    run_gauss,
    weighted_row_owners,
)
from repro.apps.nbody import (
    NBodyProblem,
    NBodyResult,
    nbody_computation,
    reference_potentials,
    run_nbody,
)
from repro.apps.stencil import (
    BYTES_PER_POINT,
    OPS_PER_POINT,
    StencilProblem,
    StencilResult,
    run_stencil,
    sequential_stencil,
    stencil_computation,
)

__all__ = [
    "run_sor",
    "sequential_sor",
    "sor_computation",
    "PowerProblem",
    "PowerResult",
    "power_computation",
    "reference_dominant_eigenvalue",
    "run_power_method",
    "HeatProblem",
    "HeatResult",
    "heat_computation",
    "run_heat",
    "sequential_heat",
    "Stencil2DResult",
    "block_bounds",
    "border_bytes_1d",
    "border_bytes_2d",
    "run_stencil_2d",
    "DynamicStencilResult",
    "LoadEvent",
    "apply_load_schedule",
    "run_stencil_dynamic",
    "GaussProblem",
    "GaussResult",
    "gauss_computation",
    "run_gauss",
    "weighted_row_owners",
    "NBodyProblem",
    "NBodyResult",
    "nbody_computation",
    "reference_potentials",
    "run_nbody",
    "BYTES_PER_POINT",
    "OPS_PER_POINT",
    "StencilProblem",
    "StencilResult",
    "run_stencil",
    "sequential_stencil",
    "stencil_computation",
]
