"""Heat diffusion with a convergence test — a two-phase communication app.

The paper's model allows several communication phases per cycle, with the
partitioner keying on the *dominant* ones.  This application exercises that:
each iteration does (1) a 1-D border exchange (dominant, ``4N`` bytes) and
(2) a small global residual all-reduce (8 bytes); iteration stops when the
residual drops below a tolerance, so the cycle count is data-dependent.

Numerics are verified against a sequential solver running the identical
criterion, including the iteration count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.apps.stencil import BYTES_PER_POINT, OPS_PER_POINT
from repro.errors import PartitionError
from repro.hardware.processor import Processor
from repro.mmps.system import MMPS
from repro.model.computation import DataParallelComputation
from repro.model.phases import CommunicationPhase, ComputationPhase
from repro.model.vector import PartitionVector
from repro.spmd.collectives import allreduce
from repro.spmd.runtime import RunResult, SPMDRun
from repro.spmd.topology import Topology

__all__ = [
    "HeatProblem",
    "heat_computation",
    "run_heat",
    "sequential_heat",
]


@dataclass(frozen=True)
class HeatProblem:
    """An NxN grid relaxed until the max update falls below ``tol``."""

    n: int
    tol: float = 1e-4
    max_iterations: int = 500

    def __post_init__(self) -> None:
        if self.n < 3:
            raise ValueError(f"grid must be at least 3x3, got N={self.n}")
        if self.tol <= 0:
            raise ValueError("tolerance must be positive")
        if self.max_iterations < 1:
            raise ValueError("need at least one iteration")


def heat_computation(
    n: int, *, tol: float = 1e-4, expected_iterations: int = 50
) -> DataParallelComputation:
    """Annotations: border exchange dominates; the residual all-reduce is the
    secondary communication phase the dominant-phase rule must skip."""
    problem = HeatProblem(n, tol=tol)
    return DataParallelComputation(
        name="HEAT",
        problem=problem,
        num_pdus=lambda p: p.n,
        computation_phases=[
            ComputationPhase(
                "relax", complexity=lambda p: OPS_PER_POINT * p.n, op_kind="fp"
            )
        ],
        communication_phases=[
            CommunicationPhase(
                "borders",
                topology=Topology.ONE_D,
                complexity=lambda p: BYTES_PER_POINT * p.n,
            ),
            # The residual all-reduce: a tree reduce followed by a flat
            # broadcast (rounds=2 of a broadcast-shaped pattern).  Ignored
            # by the paper's dominant-phase rule; counted by the extended
            # all-phases estimator.
            CommunicationPhase(
                "residual", topology=Topology.BROADCAST, complexity=8.0, rounds=2
            ),
        ],
        cycles=expected_iterations,
    )


def sequential_heat(grid: np.ndarray, tol: float, max_iterations: int = 500):
    """Reference: Jacobi sweeps until the max |update| < ``tol``.

    Returns ``(grid, iterations)``.
    """
    current = grid.astype(np.float64, copy=True)
    for iteration in range(1, max_iterations + 1):
        nxt = current.copy()
        nxt[1:-1, 1:-1] = 0.25 * (
            current[:-2, 1:-1]
            + current[2:, 1:-1]
            + current[1:-1, :-2]
            + current[1:-1, 2:]
        )
        residual = float(np.abs(nxt - current).max())
        current = nxt
        if residual < tol:
            return current, iteration
    return current, max_iterations


@dataclass
class HeatResult:
    """Outcome of one distributed heat run."""

    run: RunResult
    grid: Optional[np.ndarray]
    iterations: int

    @property
    def elapsed_ms(self) -> float:
        """Completion time of the converged run."""
        return self.run.elapsed_ms


def run_heat(
    mmps: MMPS,
    processors: Sequence[Processor],
    vector: PartitionVector,
    n: int,
    *,
    tol: float = 1e-4,
    max_iterations: int = 500,
    initial_grid: Optional[np.ndarray] = None,
) -> HeatResult:
    """Relax until global convergence; numeric when ``initial_grid`` given."""
    counts = list(vector)
    if len(counts) != len(processors):
        raise PartitionError(
            f"vector has {len(counts)} entries for {len(processors)} processors"
        )
    if vector.total != n:
        raise PartitionError(f"vector covers {vector.total} rows but N={n}")
    if any(c < 1 for c in counts):
        raise PartitionError("every processor needs at least one row")

    numeric = initial_grid is not None
    subgrids: list[Optional[np.ndarray]] = []
    start = 0
    for count in counts:
        if numeric:
            block = np.zeros((count + 2, n), dtype=np.float64)
            block[1:-1] = initial_grid[start : start + count]
            if start > 0:
                block[0] = initial_grid[start - 1]
            if start + count < n:
                block[-1] = initial_grid[start + count]
            subgrids.append(block)
        else:
            subgrids.append(None)
        start += count
    starts = np.concatenate([[0], np.cumsum(counts)]).astype(int)
    border_bytes = BYTES_PER_POINT * n

    def body(ctx):
        rows = counts[ctx.rank]
        local = subgrids[ctx.rank]
        north = ctx.rank - 1 if ctx.rank > 0 else None
        south = ctx.rank + 1 if ctx.rank < ctx.size - 1 else None
        iterations_done = 0
        for iteration in range(1, max_iterations + 1):
            if north is not None:
                payload = local[1].copy() if local is not None else None
                yield from ctx.isend(north, border_bytes, tag="s", payload=payload)
            if south is not None:
                payload = local[-2].copy() if local is not None else None
                yield from ctx.isend(south, border_bytes, tag="n", payload=payload)
            old = local.copy() if local is not None else None
            if north is not None:
                msg = yield from ctx.recv(from_rank=north, tag="n")
                if old is not None:
                    old[0] = msg.payload
            if south is not None:
                msg = yield from ctx.recv(from_rank=south, tag="s")
                if old is not None:
                    old[-1] = msg.payload
            yield from ctx.compute(OPS_PER_POINT * n * rows)
            local_residual = 0.0
            if local is not None:
                from repro.apps.stencil import _jacobi_rows

                before = local.copy()
                _jacobi_rows(old, local, n, starts[ctx.rank], first=1, last=rows)
                local_residual = float(np.abs(local[1:-1] - before[1:-1]).max())
            else:
                # Timing mode: synthesize a geometric residual decay so the
                # convergence control flow still runs.
                local_residual = 0.5 ** iteration
            residual = yield from allreduce(ctx, 8, local_residual, max, tag=f"r{iteration}")
            iterations_done = iteration
            ctx.mark_cycle()
            if residual < tol:
                break
        return iterations_done

    run = SPMDRun(mmps, processors, body, Topology.ONE_D)
    result = run.execute()
    iterations = result.task_values[0]
    assert all(v == iterations for v in result.task_values)
    grid = None
    if numeric:
        grid = np.vstack([block[1:-1] for block in subgrids if block is not None])
    return HeatResult(run=result, grid=grid, iterations=iterations)
