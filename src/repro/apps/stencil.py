"""The canonical evaluation application: an NxN five-point stencil (§4, §6).

Two implementations, exactly as the paper evaluates:

* **STEN-1** — border exchange, then grid computation (no overlap);
* **STEN-2** — border transmission overlapped with the grid computation
  (asynchronous sends, interior rows computed while borders are in flight,
  boundary rows finished after the receives).

The PDU is one grid row; tasks form a 1-D topology; annotations follow §4:
``num_PDUs = N``, computational complexity ``5N`` fp ops per PDU,
communication complexity ``4N`` bytes per message (4-byte grid points).

Both a *timing* mode (abstract byte/op costs only) and a *numeric* mode
(real NumPy rows ride the messages; results verified against a sequential
solver) are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import PartitionError
from repro.hardware.processor import Processor
from repro.mmps.system import MMPS
from repro.model.computation import DataParallelComputation
from repro.model.phases import CommunicationPhase, ComputationPhase
from repro.model.vector import PartitionVector
from repro.spmd.runtime import RunResult, SPMDRun
from repro.spmd.task import TaskContext
from repro.spmd.topology import Topology

__all__ = [
    "StencilProblem",
    "StencilCycleProgram",
    "stencil_computation",
    "run_stencil",
    "sequential_stencil",
    "BYTES_PER_POINT",
    "OPS_PER_POINT",
]

#: 4-byte grid points (the paper's assumption).
BYTES_PER_POINT = 4
#: Five-point update: 4 adds + 1 multiply per grid point.
OPS_PER_POINT = 5


@dataclass(frozen=True)
class StencilProblem:
    """Problem parameters the annotation callbacks close over."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 3:
            raise ValueError(f"stencil grid must be at least 3x3, got N={self.n}")


def stencil_computation(
    n: int, *, overlap: bool, cycles: int = 10
) -> DataParallelComputation:
    """The §4 annotations for STEN-1 (``overlap=False``) or STEN-2.

    num_PDUs = N; computational complexity = 5N fp ops; topology 1-D;
    communication complexity = 4N bytes.
    """
    problem = StencilProblem(n)
    return DataParallelComputation(
        name="STEN-2" if overlap else "STEN-1",
        problem=problem,
        num_pdus=lambda p: p.n,
        computation_phases=[
            ComputationPhase(
                "grid-update", complexity=lambda p: OPS_PER_POINT * p.n, op_kind="fp"
            )
        ],
        communication_phases=[
            CommunicationPhase(
                "border-exchange",
                topology=Topology.ONE_D,
                complexity=lambda p: BYTES_PER_POINT * p.n,
                overlap="grid-update" if overlap else None,
            )
        ],
        cycles=cycles,
    )


def sequential_stencil(grid: np.ndarray, iterations: int) -> np.ndarray:
    """Reference Jacobi sweep: interior points become the 4-neighbour mean.

    The outer boundary is held fixed (Dirichlet).  Vectorized NumPy; the
    oracle for the distributed numeric mode.
    """
    if grid.ndim != 2 or grid.shape[0] != grid.shape[1]:
        raise ValueError(f"grid must be square 2-D, got shape {grid.shape}")
    current = grid.astype(np.float64, copy=True)
    for _ in range(iterations):
        nxt = current.copy()
        nxt[1:-1, 1:-1] = 0.25 * (
            current[:-2, 1:-1]
            + current[2:, 1:-1]
            + current[1:-1, :-2]
            + current[1:-1, 2:]
        )
        current = nxt
    return current


def _stencil_body(
    n: int,
    iterations: int,
    counts: Sequence[int],
    overlap: bool,
    subgrids: Optional[list[np.ndarray]],
    include_distribution: bool = False,
):
    """Build the task body shared by STEN-1/STEN-2, timing or numeric mode."""
    starts = np.concatenate([[0], np.cumsum(counts)]).astype(int)
    border_bytes = BYTES_PER_POINT * n

    def body(ctx):
        rows = counts[ctx.rank]
        if include_distribution and ctx.size > 1:
            # T_startup: rank 0 holds the initial grid and ships each task
            # its block of rows before the iterations begin (the cost the
            # paper's Table 2 timings deliberately exclude).
            if ctx.rank == 0:
                for other in range(1, ctx.size):
                    yield from ctx.isend(
                        other, BYTES_PER_POINT * n * counts[other], tag="dist"
                    )
            else:
                yield from ctx.recv(from_rank=0, tag="dist")
        ctx.mark_cycle()  # distribution/startup boundary
        local = subgrids[ctx.rank] if subgrids is not None else None
        north = ctx.rank - 1 if ctx.rank > 0 else None
        south = ctx.rank + 1 if ctx.rank < ctx.size - 1 else None
        for _ in range(iterations):
            # -- communication phase: send current borders -----------------------
            if north is not None:
                payload = local[1].copy() if local is not None else None
                yield from ctx.isend(north, border_bytes, tag="south", payload=payload)
            if south is not None:
                payload = local[-2].copy() if local is not None else None
                yield from ctx.isend(south, border_bytes, tag="north", payload=payload)

            # Jacobi double buffer: reads come from `old`, writes go to `local`.
            old = local.copy() if local is not None else None

            def receive_borders():
                if north is not None:
                    msg = yield from ctx.recv(from_rank=north, tag="north")
                    if old is not None:
                        old[0] = msg.payload
                if south is not None:
                    msg = yield from ctx.recv(from_rank=south, tag="south")
                    if old is not None:
                        old[-1] = msg.payload

            if not overlap:
                # STEN-1: finish the whole exchange, then compute all rows.
                yield from receive_borders()
                yield from ctx.compute(OPS_PER_POINT * n * rows)
                if local is not None:
                    _jacobi_rows(old, local, n, starts[ctx.rank], first=1, last=rows)
            else:
                # STEN-2: interior rows (which need no halo) overlap with the
                # border transmission; halo-dependent rows finish afterwards.
                interior = max(rows - 2, 0)
                yield from ctx.compute(OPS_PER_POINT * n * interior)
                if local is not None and interior > 0:
                    _jacobi_rows(old, local, n, starts[ctx.rank], first=2, last=rows - 1)
                yield from receive_borders()
                boundary = rows - interior
                yield from ctx.compute(OPS_PER_POINT * n * boundary)
                if local is not None:
                    _jacobi_rows(old, local, n, starts[ctx.rank], first=1, last=1)
                    if rows > 1:
                        _jacobi_rows(old, local, n, starts[ctx.rank], first=rows, last=rows)
            ctx.mark_cycle()
        return ctx.cycle_times()

    return body


def _jacobi_rows(
    old: np.ndarray, new: np.ndarray, n: int, global_start: int, first: int, last: int
) -> None:
    """Jacobi-update local rows ``first..last`` (1-based within the halo block).

    Reads exclusively from ``old`` (pre-iteration values, including received
    halo rows); writes into ``new``.  Rows and columns on the global grid
    boundary are Dirichlet-fixed and skipped.
    """
    lo = max(first, 1)
    hi = min(last, old.shape[0] - 2)
    for k in range(lo, hi + 1):
        gk = global_start + (k - 1)  # global row index
        if gk == 0 or gk == n - 1:
            continue  # fixed global boundary row
        new[k, 1:-1] = 0.25 * (
            old[k - 1, 1:-1] + old[k + 1, 1:-1] + old[k, :-2] + old[k, 2:]
        )


class StencilCycleProgram:
    """STEN-1/STEN-2 (timing mode) expressed one cycle at a time.

    The adapter the fast-forward engine
    (:class:`repro.sim.fastforward.FastForwardEngine`) drives: instead of one
    long task body looping over iterations, each call to
    :meth:`cycle_bodies` yields fresh single-iteration generators, so the
    engine can run every cycle from canonical (quiescent, rewound) state and
    skip confirmed steady-state windows.

    On fail-stop node loss (:meth:`handle_failure`) the ring shrinks to the
    survivors: the dead ranks' rows move to the surviving rank with the
    fewest rows (lowest rank on ties) — the deterministic stand-in for the
    supervisor's repartition, sufficient for parity and benchmark runs.
    """

    def __init__(
        self,
        mmps: MMPS,
        processors: Sequence[Processor],
        vector: Sequence[int],
        n: int,
        *,
        overlap: bool = False,
    ) -> None:
        counts = [int(c) for c in vector]
        if len(counts) != len(processors):
            raise PartitionError(
                f"partition vector has {len(counts)} entries for "
                f"{len(processors)} processors"
            )
        if sum(counts) != n:
            raise PartitionError(f"vector covers {sum(counts)} rows but N={n}")
        if any(c < 1 for c in counts):
            raise PartitionError(
                "every chosen processor needs at least one row; "
                f"got {counts} (drop zero-count processors from the configuration)"
            )
        self.mmps = mmps
        self.n = n
        self.overlap = overlap
        self._rebuild(list(processors), counts)

    def _rebuild(self, processors: list[Processor], counts: list[int]) -> None:
        self.placement = processors
        self.counts = counts
        self.contexts = [
            TaskContext(
                run=self,
                rank=rank,
                placement=self.placement,
                endpoint=self.mmps.endpoint(proc),
                topology=Topology.ONE_D,
            )
            for rank, proc in enumerate(self.placement)
        ]

    def pdu_counts(self) -> list[int]:
        """Rows currently owned per rank (the engine's triage denominator)."""
        return list(self.counts)

    def cycle_bodies(self):
        """Fresh one-iteration generators, one per current rank."""
        return [
            self._cycle(ctx, self.counts[ctx.rank]) for ctx in self.contexts
        ]

    def _cycle(self, ctx, rows: int):
        border_bytes = BYTES_PER_POINT * self.n
        north = ctx.rank - 1 if ctx.rank > 0 else None
        south = ctx.rank + 1 if ctx.rank < ctx.size - 1 else None
        if north is not None:
            yield from ctx.isend(north, border_bytes, tag="south")
        if south is not None:
            yield from ctx.isend(south, border_bytes, tag="north")

        def receive_borders():
            if north is not None:
                yield from ctx.recv(from_rank=north, tag="north")
            if south is not None:
                yield from ctx.recv(from_rank=south, tag="south")

        if not self.overlap:
            # STEN-1: finish the whole exchange, then compute all rows.
            yield from receive_borders()
            yield from ctx.compute(OPS_PER_POINT * self.n * rows)
        else:
            # STEN-2: interior rows overlap with the border transmission.
            interior = max(rows - 2, 0)
            yield from ctx.compute(OPS_PER_POINT * self.n * interior)
            yield from receive_borders()
            yield from ctx.compute(OPS_PER_POINT * self.n * (rows - interior))

    def handle_failure(self, proc_ids: Sequence[int]) -> None:
        """Shrink the ring to the survivors; orphaned rows follow the rule above."""
        dead = set(proc_ids)
        if not any(p.proc_id in dead for p in self.placement):
            return  # bystander node: the decomposition is untouched
        survivors: list[Processor] = []
        counts: list[int] = []
        orphaned = 0
        for proc, count in zip(self.placement, self.counts):
            if proc.proc_id in dead:
                orphaned += count
            else:
                survivors.append(proc)
                counts.append(count)
        if not survivors:
            raise PartitionError("every task's node died: nothing left to run on")
        if orphaned:
            target = min(range(len(counts)), key=lambda i: (counts[i], i))
            counts[target] += orphaned
        self._rebuild(survivors, counts)


@dataclass
class StencilResult:
    """Outcome of one stencil execution."""

    run: RunResult
    grid: Optional[np.ndarray]

    @property
    def elapsed_ms(self) -> float:
        """Completion time *excluding* startup (the paper's Table 2 metric).

        Tasks mark the startup/iteration boundary; the iteration time runs
        from the last task crossing that boundary to run completion.
        """
        start = max(ctx.cycle_marks[0] for ctx in self.run.contexts)
        return self.run.end_ms - start

    @property
    def startup_ms(self) -> float:
        """The ``T_startup`` component: time until every task holds its data."""
        return max(ctx.cycle_marks[0] for ctx in self.run.contexts) - self.run.start_ms

    @property
    def total_ms(self) -> float:
        """``T_elapsed = I·T_c + T_startup`` — the whole run."""
        return self.run.elapsed_ms


def run_stencil(
    mmps: MMPS,
    processors: Sequence[Processor],
    vector: PartitionVector,
    n: int,
    *,
    iterations: int = 10,
    overlap: bool = False,
    initial_grid: Optional[np.ndarray] = None,
    include_distribution: bool = False,
) -> StencilResult:
    """Execute STEN-1/STEN-2 over the given configuration and partition.

    With ``initial_grid`` supplied, runs in numeric mode: the grid is
    scattered by rows per the partition vector, border rows ride the
    messages, and the reassembled result is returned for verification.

    ``elapsed_ms`` excludes the initial distribution, matching the paper's
    "these timings do not include the initial grid distribution"; with
    ``include_distribution=True`` rank 0 actually ships every task its rows
    first, and the cost appears in ``startup_ms`` / ``total_ms``
    (``T_elapsed = I·T_c + T_startup``).
    """
    counts = list(vector)
    if len(counts) != len(processors):
        raise PartitionError(
            f"partition vector has {len(counts)} entries for {len(processors)} processors"
        )
    if vector.total != n:
        raise PartitionError(f"vector covers {vector.total} rows but N={n}")
    if any(c < 1 for c in counts):
        raise PartitionError(
            "every chosen processor needs at least one row; "
            f"got {counts} (drop zero-count processors from the configuration)"
        )
    subgrids: Optional[list[np.ndarray]] = None
    if initial_grid is not None:
        if initial_grid.shape != (n, n):
            raise ValueError(f"initial grid must be {n}x{n}, got {initial_grid.shape}")
        subgrids = []
        start = 0
        for count in counts:
            # Halo row above and below the owned band.
            block = np.zeros((count + 2, n), dtype=np.float64)
            block[1:-1] = initial_grid[start : start + count]
            if start > 0:
                block[0] = initial_grid[start - 1]
            if start + count < n:
                block[-1] = initial_grid[start + count]
            subgrids.append(block)
            start += count

    body = _stencil_body(
        n, iterations, counts, overlap, subgrids, include_distribution
    )
    run = SPMDRun(mmps, processors, body, Topology.ONE_D)
    result = run.execute()

    grid = None
    if subgrids is not None:
        grid = np.vstack([block[1:-1] for block in subgrids])
    return StencilResult(run=result, grid=grid)
