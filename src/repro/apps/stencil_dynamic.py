"""STEN-1/STEN-2 with dynamic repartitioning (paper §7 future work).

Extends the stencil with the load-imbalance strategy the paper sketches:
every ``epoch`` iterations, the tasks gather their measured per-row compute
times, and if the imbalance exceeds a threshold, rank 0 recomputes the
partition vector from the *measured* speeds (a runtime Eq 3), broadcasts it,
and the tasks ship the rows whose ownership changed before continuing.

External load is injected through :class:`LoadEvent` schedules applied on
the simulated timeline, and the task-side ``compute`` honours each node's
current load — so a node that picks up a competing job genuinely slows
down, trips the monitor, and sheds rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.apps.stencil import BYTES_PER_POINT, OPS_PER_POINT
from repro.errors import PartitionError
from repro.hardware.network import HeterogeneousNetwork
from repro.hardware.processor import Processor
from repro.mmps.system import MMPS
from repro.model.vector import PartitionVector
from repro.partition.dynamic import (
    detect_imbalance,
    moved_pdus,
    rebalance_counts,
    transfer_plan,
)
from repro.spmd.collectives import broadcast, reduce
from repro.spmd.runtime import RunResult, SPMDRun
from repro.spmd.topology import Topology

__all__ = ["LoadEvent", "DynamicStencilResult", "run_stencil_dynamic", "apply_load_schedule"]


@dataclass(frozen=True)
class LoadEvent:
    """At simulated time ``at_ms``, set processor ``proc_id``'s load."""

    at_ms: float
    proc_id: int
    load: float


def apply_load_schedule(
    network: HeterogeneousNetwork, events: Sequence[LoadEvent]
) -> None:
    """Install a process that applies the load events on the timeline."""

    def applier():
        for event in sorted(events, key=lambda e: e.at_ms):
            delay = event.at_ms - network.sim.now
            if delay > 0:
                yield network.sim.timeout(delay)
            network.processor(event.proc_id).set_load(event.load)
            network.tracer.record(
                "load", "set", proc=event.proc_id, load=event.load
            )

    if events:
        network.sim.process(applier(), name="load-schedule")


@dataclass
class DynamicStencilResult:
    """Outcome of a dynamically repartitioned stencil run."""

    run: RunResult
    vectors: list[list[int]] = field(default_factory=list)
    repartitions: int = 0
    rows_moved: int = 0

    @property
    def elapsed_ms(self) -> float:
        """Completion time including repartitioning overhead."""
        return self.run.elapsed_ms


def run_stencil_dynamic(
    mmps: MMPS,
    processors: Sequence[Processor],
    vector: PartitionVector,
    n: int,
    *,
    iterations: int = 20,
    overlap: bool = False,
    epoch: int = 5,
    imbalance_threshold: float = 1.25,
    enabled: bool = True,
) -> DynamicStencilResult:
    """Run the stencil, rebalancing rows every ``epoch`` iterations.

    ``enabled=False`` runs the identical epoch/monitoring structure but
    never repartitions — the static baseline for ablations.  Timing mode
    only (the repartitioning mechanics are identical with payloads; the
    static stencil's numerics are verified in :mod:`repro.apps.stencil`).
    """
    counts = list(vector)
    if len(counts) != len(processors):
        raise PartitionError(
            f"vector has {len(counts)} entries for {len(processors)} processors"
        )
    if vector.total != n:
        raise PartitionError(f"vector covers {vector.total} rows but N={n}")
    if any(c < 1 for c in counts):
        raise PartitionError("every processor needs at least one row")
    if epoch < 1:
        raise PartitionError(f"epoch must be >= 1, got {epoch}")

    border_bytes = BYTES_PER_POINT * n
    row_bytes = BYTES_PER_POINT * n
    state = {"vectors": [list(counts)], "repartitions": 0, "rows_moved": 0}

    def body(ctx):
        # Each task keeps its own copy of the current decomposition: tasks
        # sit at different points of the simulated timeline, so shared
        # mutable state would race.  All copies stay identical because every
        # rank applies the same broadcast updates.
        local_counts = list(counts)
        my_rows = local_counts[ctx.rank]
        done = 0
        while done < iterations:
            # -- one epoch of ordinary stencil cycles -------------------------
            compute_before = ctx.compute_time_ms
            steps = min(epoch, iterations - done)
            for _ in range(steps):
                north = ctx.rank - 1 if ctx.rank > 0 else None
                south = ctx.rank + 1 if ctx.rank < ctx.size - 1 else None
                if north is not None:
                    yield from ctx.isend(north, border_bytes, tag="s")
                if south is not None:
                    yield from ctx.isend(south, border_bytes, tag="n")
                if overlap:
                    interior = max(my_rows - 2, 0)
                    yield from ctx.compute(OPS_PER_POINT * n * interior)
                    if north is not None:
                        yield from ctx.recv(from_rank=north, tag="n")
                    if south is not None:
                        yield from ctx.recv(from_rank=south, tag="s")
                    yield from ctx.compute(OPS_PER_POINT * n * (my_rows - max(my_rows - 2, 0)))
                else:
                    if north is not None:
                        yield from ctx.recv(from_rank=north, tag="n")
                    if south is not None:
                        yield from ctx.recv(from_rank=south, tag="s")
                    yield from ctx.compute(OPS_PER_POINT * n * my_rows)
                ctx.mark_cycle()
            done += steps
            if done >= iterations or not enabled:
                continue

            # -- epoch boundary: gather measured compute times -------------------
            # Imbalance is a *completion-time* property (tasks should finish
            # each cycle together), so detection uses total per-task epoch
            # times; the new shares come from per-row speeds (measured S_i).
            epoch_ms = ctx.compute_time_ms - compute_before
            per_row = epoch_ms / (my_rows * steps)
            sample = {ctx.rank: (epoch_ms, per_row)}
            merged = yield from reduce(
                ctx, 24 * ctx.size, sample, lambda a, b: {**a, **b}, tag=f"m{done}"
            )
            if ctx.rank == 0:
                totals = [merged[r][0] for r in range(ctx.size)]
                per_row_times = [merged[r][1] for r in range(ctx.size)]
                if detect_imbalance(totals, threshold=imbalance_threshold):
                    # rebalance_counts guarantees every rank keeps >= 1 row,
                    # so only the no-op case is filtered here.
                    new_vec = rebalance_counts(local_counts, per_row_times)
                    new_counts = list(new_vec)
                    if new_counts == local_counts:
                        new_counts = None
                else:
                    new_counts = None
            else:
                new_counts = None
            new_counts = yield from broadcast(
                ctx, 8 * ctx.size, new_counts, root=0, tag=f"v{done}"
            )
            if new_counts is None:
                continue

            # -- data movement: ship rows to their new owners --------------------
            plan = transfer_plan(local_counts, new_counts)
            for (src, dst), rows in sorted(plan.items()):
                if src == ctx.rank:
                    yield from ctx.isend(dst, rows * row_bytes, tag=f"x{done}:{src}")
            for (src, dst), rows in sorted(plan.items()):
                if dst == ctx.rank:
                    yield from ctx.recv(from_rank=src, tag=f"x{done}:{src}")
            if ctx.rank == 0:
                state["vectors"].append(list(new_counts))
                state["repartitions"] += 1
                state["rows_moved"] += moved_pdus(plan)
            local_counts = list(new_counts)
            my_rows = local_counts[ctx.rank]
        return my_rows

    run = SPMDRun(mmps, processors, body, Topology.ONE_D)
    result = run.execute()
    return DynamicStencilResult(
        run=result,
        vectors=state["vectors"],
        repartitions=state["repartitions"],
        rows_moved=state["rows_moved"],
    )
