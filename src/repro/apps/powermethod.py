"""Distributed power method — an all-gather-per-cycle application.

Iterates ``x ← A·x / ‖A·x‖`` for a row-distributed dense symmetric matrix
until the Rayleigh-quotient eigenvalue estimate stabilizes.  Every cycle
needs the *whole* vector on every task, so the dominant communication is a
ring all-gather — a pattern whose per-task traffic grows with the total
problem (like broadcast) but pipelines around the ring (unlike broadcast).

PDU = one matrix row; per-PDU work per cycle = ``2N`` ops (one dot
product); ring message ≈ the average block, ``8·N/P̄`` bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import PartitionError
from repro.hardware.processor import Processor
from repro.mmps.system import MMPS
from repro.model.computation import DataParallelComputation
from repro.model.phases import CommunicationPhase, ComputationPhase
from repro.model.vector import PartitionVector
from repro.spmd.collectives import allgather, allreduce
from repro.spmd.runtime import RunResult, SPMDRun
from repro.spmd.topology import Topology

__all__ = ["PowerProblem", "power_computation", "run_power_method", "reference_dominant_eigenvalue"]

FLOAT_BYTES = 8


@dataclass(frozen=True)
class PowerProblem:
    """An NxN symmetric system iterated to eigenvalue tolerance ``tol``."""

    n: int
    tol: float = 1e-9
    max_iterations: int = 200

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"matrix must be at least 2x2, got N={self.n}")
        if self.tol <= 0 or self.max_iterations < 1:
            raise ValueError("invalid tolerance/iteration bound")


def power_computation(
    n: int, *, expected_processors: int = 4, expected_iterations: int = 40
) -> DataParallelComputation:
    """Annotations: ``2N`` fp ops per row per cycle; ring all-gather whose
    block size is the *largest* circulating block — the paper's "b may
    depend on A_i in some cases", expressed through the per-config
    callback (the scalar annotation keeps a nominal estimate as fallback).
    """
    problem = PowerProblem(n)
    return DataParallelComputation(
        name="POWER",
        problem=problem,
        num_pdus=lambda p: p.n,
        computation_phases=[
            ComputationPhase("matvec", complexity=lambda p: 2.0 * p.n, op_kind="fp")
        ],
        communication_phases=[
            # A ring all-gather is P-1 rounds of the ring pattern per
            # iteration — the paper's single-communication-per-cycle
            # assumption does not hold, so the rounds annotation carries it.
            CommunicationPhase(
                "allgather",
                topology=Topology.RING,
                complexity=lambda p: FLOAT_BYTES * p.n / expected_processors,
                per_config_complexity=lambda p, shares: FLOAT_BYTES * max(shares),
                rounds=lambda p, total: max(total - 1, 1),
            ),
            # The Rayleigh-quotient all-reduce (16-byte payload).
            CommunicationPhase(
                "rayleigh", topology=Topology.BROADCAST, complexity=16.0, rounds=2
            ),
        ],
        cycles=expected_iterations,
    )


def reference_dominant_eigenvalue(matrix: np.ndarray) -> float:
    """|λ|max of a symmetric matrix via NumPy — the verification oracle."""
    eigenvalues = np.linalg.eigvalsh(matrix)
    return float(max(abs(eigenvalues[0]), abs(eigenvalues[-1])))


@dataclass
class PowerResult:
    """Outcome of one distributed power-method run."""

    run: RunResult
    eigenvalue: float
    iterations: int

    @property
    def elapsed_ms(self) -> float:
        """Completion time of the converged run."""
        return self.run.elapsed_ms


def run_power_method(
    mmps: MMPS,
    processors: Sequence[Processor],
    vector: PartitionVector,
    matrix: np.ndarray,
    *,
    tol: float = 1e-9,
    max_iterations: int = 200,
) -> PowerResult:
    """Run the distributed power method; returns the dominant eigenvalue."""
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    if vector.total != n:
        raise PartitionError(f"vector covers {vector.total} rows but N={n}")
    if vector.size != len(processors):
        raise PartitionError(
            f"vector has {vector.size} entries for {len(processors)} processors"
        )
    if any(c < 1 for c in vector):
        raise PartitionError("every processor needs at least one row")
    bounds = np.concatenate([[0], np.cumsum(list(vector))]).astype(int)
    blocks = [matrix[bounds[i] : bounds[i + 1]].astype(np.float64) for i in range(vector.size)]
    block_bytes = [FLOAT_BYTES * int(c) for c in vector]

    def body(ctx):
        a_block = blocks[ctx.rank]
        rows = a_block.shape[0]
        x_local = np.ones(rows) / np.sqrt(n)
        eigenvalue = 0.0
        iterations = 0
        for iteration in range(1, max_iterations + 1):
            pieces = yield from allgather(
                ctx, max(block_bytes), x_local, tag=f"ag{iteration}"
            )
            x_full = np.concatenate(pieces)
            yield from ctx.compute(2 * n * rows, kind="fp")
            y_local = a_block @ x_full
            # Rayleigh numerator/denominator and norm via all-reduce.
            stats = (
                float(x_local @ y_local),
                float(y_local @ y_local),
            )
            num, ysq = yield from allreduce(
                ctx, 16, stats, lambda a, b: (a[0] + b[0], a[1] + b[1]),
                tag=f"rq{iteration}",
            )
            norm = np.sqrt(ysq)
            if norm == 0.0:
                raise PartitionError("zero vector during power iteration")
            new_eigenvalue = num  # x normalized: x·Ax is the Rayleigh quotient
            x_local = y_local / norm
            iterations = iteration
            ctx.mark_cycle()
            if abs(new_eigenvalue - eigenvalue) < tol:
                eigenvalue = new_eigenvalue
                break
            eigenvalue = new_eigenvalue
        return eigenvalue, iterations

    run = SPMDRun(mmps, processors, body, Topology.RING)
    result = run.execute()
    eigenvalue, iterations = result.task_values[0]
    for other_ev, other_it in result.task_values[1:]:
        assert other_it == iterations
    return PowerResult(run=result, eigenvalue=abs(eigenvalue), iterations=iterations)
