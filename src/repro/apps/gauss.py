"""Gaussian elimination with partial pivoting (paper §6's second application).

The paper reports "success applying the method to Gaussian elimination with
partial pivoting, an application that has *non-uniform* computational and
communication complexity".  This module provides that application:

* PDU = one row of the augmented ``N x (N+1)`` system;
* tasks hold rows assigned *round-robin weighted by the partition vector*
  (interleaving keeps remaining work balanced as elimination shrinks the
  active set — the standard distribution for GE);
* each elimination step: local pivot candidate search, an all-reduce to pick
  the global pivot, a **broadcast** of the pivot row (the paper's
  bandwidth-limited topology), then local elimination;
* back substitution happens on rank 0 after a gather.

Annotations use per-cycle *averages* (the complexity is non-uniform across
the N cycles): eliminating column ``k`` touches ``N-k-1`` rows of length
``N-k+1``, so the average work per PDU per cycle is about ``N`` operations
and the average broadcast message is about ``2N`` bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import PartitionError
from repro.hardware.processor import Processor
from repro.mmps.system import MMPS
from repro.model.computation import DataParallelComputation
from repro.model.phases import CommunicationPhase, ComputationPhase
from repro.model.vector import PartitionVector
from repro.spmd.collectives import allreduce, broadcast
from repro.spmd.runtime import RunResult, SPMDRun
from repro.spmd.topology import Topology

__all__ = [
    "GaussProblem",
    "gauss_computation",
    "run_gauss",
    "weighted_row_owners",
    "FLOAT_BYTES",
]

#: 8-byte matrix elements (double precision, unlike the stencil's floats).
FLOAT_BYTES = 8


@dataclass(frozen=True)
class GaussProblem:
    """Problem parameters for an ``N x N`` dense system."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"system must be at least 2x2, got N={self.n}")


def gauss_computation(n: int) -> DataParallelComputation:
    """Annotations for GE with partial pivoting — *non-uniform* complexity.

    One cycle per elimination step (``I = N``).  At step ``k`` each of the
    ``N-k-1`` still-active rows does ``2·(N-k+1)`` ops, i.e. per owned PDU
    ``2·(N-k+1)·(N-k-1)/N`` on average — supplied exactly through the
    per-cycle callbacks; the scalar annotations carry the cycle-averaged
    values (``2N/3`` ops per PDU, ``4(N+2)`` bytes) for the ``T_c``-based
    search.  The pivot-row broadcast at step ``k`` moves ``8·(N-k+2)``
    bytes.
    """
    problem = GaussProblem(n)

    def comp_at_cycle(p: GaussProblem, k: int) -> float:
        remaining = max(p.n - k - 1, 0)
        return 2.0 * (p.n - k + 1) * remaining / p.n

    def comm_at_cycle(p: GaussProblem, k: int) -> float:
        return float(FLOAT_BYTES * (p.n - k + 2))

    return DataParallelComputation(
        name="GAUSS",
        problem=problem,
        num_pdus=lambda p: p.n,
        computation_phases=[
            ComputationPhase(
                "eliminate",
                complexity=lambda p: 2.0 * p.n / 3.0,
                op_kind="fp",
                per_cycle_complexity=comp_at_cycle,
            )
        ],
        communication_phases=[
            CommunicationPhase(
                "pivot-broadcast",
                topology=Topology.BROADCAST,
                complexity=lambda p: FLOAT_BYTES * (p.n + 2) / 2.0,
                per_cycle_complexity=comm_at_cycle,
            )
        ],
        cycles=n,
    )


def weighted_row_owners(vector: PartitionVector, n: int) -> np.ndarray:
    """Row → owning rank, interleaved proportionally to the partition vector.

    Deals rows card-style: each round, every rank with remaining quota takes
    one row, ranks with larger ``A_i`` keep drawing after the others run out
    — preserving exact counts while interleaving ownership through the
    matrix so the active set stays balanced as elimination proceeds.
    """
    if vector.total != n:
        raise PartitionError(f"vector covers {vector.total} rows but N={n}")
    remaining = list(vector)
    owners = np.empty(n, dtype=int)
    row = 0
    while row < n:
        progressed = False
        for rank, quota in enumerate(remaining):
            if quota > 0 and row < n:
                owners[row] = rank
                remaining[rank] -= 1
                row += 1
                progressed = True
        if not progressed:  # pragma: no cover - guarded by vector.total check
            raise PartitionError("row dealing stalled")
    return owners


@dataclass
class GaussResult:
    """Outcome of one distributed GE execution."""

    run: RunResult
    solution: Optional[np.ndarray]

    @property
    def elapsed_ms(self) -> float:
        """Completion time of the factorization + solve."""
        return self.run.elapsed_ms


def run_gauss(
    mmps: MMPS,
    processors: Sequence[Processor],
    vector: PartitionVector,
    n: int,
    *,
    matrix: Optional[np.ndarray] = None,
    rhs: Optional[np.ndarray] = None,
    back_substitution: str = "distributed",
) -> GaussResult:
    """Execute distributed GE with partial pivoting.

    With ``matrix``/``rhs`` given, runs numerically and returns the solution
    vector (compare against ``numpy.linalg.solve``); otherwise runs in pure
    timing mode with a synthetic well-conditioned system.

    ``back_substitution`` selects the solve phase:

    * ``"distributed"`` (default) — pivot-row owners compute their ``x_k``
      in reverse pivot order and broadcast each value (N small broadcasts);
    * ``"root"`` — rank 0, which collected every broadcast pivot row during
      elimination, back-substitutes locally.
    """
    if back_substitution not in ("distributed", "root"):
        raise PartitionError(
            f"unknown back_substitution mode {back_substitution!r}"
        )
    if len(list(vector)) != len(processors):
        raise PartitionError(
            f"vector has {vector.size} entries for {len(processors)} processors"
        )
    numeric = matrix is not None
    if numeric:
        if matrix.shape != (n, n):
            raise ValueError(f"matrix must be {n}x{n}, got {matrix.shape}")
        if rhs is None or rhs.shape != (n,):
            raise ValueError("numeric mode needs rhs of shape (n,)")
        augmented = np.column_stack([matrix.astype(np.float64), rhs.astype(np.float64)])
    else:
        rng = np.random.default_rng(0)
        augmented = rng.random((n, n + 1)) + np.column_stack(
            [np.eye(n) * n, np.zeros(n)]
        )
    owners = weighted_row_owners(vector, n)
    row_bytes = FLOAT_BYTES * (n + 2)  # row + rhs + pivot metadata

    def body(ctx):
        mine = {int(r): augmented[r].copy() for r in np.where(owners == ctx.rank)[0]}
        pivoted: set[int] = set()
        step_owner: list[int] = []          # owner rank per elimination step
        my_steps: dict[int, np.ndarray] = {}  # step -> pivot row (if I own it)
        for k in range(n):
            # -- local pivot search over not-yet-pivoted owned rows ------------
            active = [r for r in mine if r not in pivoted]
            yield from ctx.compute(2 * len(active), kind="fp")
            best_val, best_row = -1.0, -1
            for r in active:
                v = abs(float(mine[r][k]))
                if v > best_val:
                    best_val, best_row = v, r
            # -- global argmax via allreduce -----------------------------------
            winner = yield from allreduce(
                ctx, 24, (best_val, best_row, ctx.rank), lambda a, b: max(a, b),
                tag=f"pivot{k}",
            )
            _pv, pivot_row, owner = winner
            if pivot_row < 0:
                raise PartitionError(f"no pivot candidate at step {k}")
            # -- broadcast the pivot row (bandwidth-limited topology) -----------
            payload = mine[pivot_row].copy() if ctx.rank == owner else None
            pivot_data = yield from broadcast(
                ctx, row_bytes, value=payload, root=owner, tag=f"row{k}"
            )
            pivoted.add(pivot_row)
            # -- eliminate column k from remaining owned rows --------------------
            remaining = [r for r in mine if r not in pivoted]
            width = n + 1 - k
            yield from ctx.compute(2 * width * len(remaining), kind="fp")
            pivot_val = pivot_data[k]
            if pivot_val == 0.0:
                raise PartitionError(f"singular system at step {k}")
            for r in remaining:
                factor = mine[r][k] / pivot_val
                mine[r][k:] -= factor * pivot_data[k:]
                mine[r][k] = 0.0
            step_owner.append(owner)
            if ctx.rank == owner:
                my_steps[k] = pivot_data
            if ctx.rank == 0 and back_substitution == "root":
                # Rank 0 keeps the broadcast pivot rows: stacked in pivot
                # order they form the (row-permuted) upper-triangular system.
                mine_pivots[pivot_row] = pivot_data
                pivot_order.append(pivot_row)

        if back_substitution == "root":
            # -- gather-free root solve: rank 0 already has every pivot row ----
            if ctx.rank != 0:
                return None
            yield from ctx.compute(n * n, kind="fp")
            upper = np.vstack([mine_pivots[r] for r in pivot_order])
            x = np.zeros(n)
            for i in range(n - 1, -1, -1):
                x[i] = (upper[i][-1] - upper[i][i + 1 : n] @ x[i + 1 : n]) / upper[i][i]
            return x

        # -- distributed back substitution: reverse pivot order ------------------
        x = np.zeros(n)
        for k in range(n - 1, -1, -1):
            owner = step_owner[k]
            if ctx.rank == owner:
                row = my_steps[k]
                yield from ctx.compute(2 * (n - k), kind="fp")
                value = (row[-1] - row[k + 1 : n] @ x[k + 1 : n]) / row[k]
            else:
                value = None
            value = yield from broadcast(
                ctx, FLOAT_BYTES, value=value, root=owner, tag=f"x{k}"
            )
            x[k] = value
        return x

    mine_pivots: dict[int, np.ndarray] = {}
    pivot_order: list[int] = []
    run = SPMDRun(mmps, processors, body, Topology.BROADCAST)
    result = run.execute()
    if back_substitution == "root":
        solution = result.task_values[0]
    else:
        # Every rank returns the full solution; they must agree.
        solution = result.task_values[0]
        for other in result.task_values[1:]:
            assert np.array_equal(other, solution)
    return GaussResult(run=result, solution=solution)
