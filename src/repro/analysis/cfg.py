"""Per-function control-flow graphs for the flow-sensitive lint rules.

The syntactic rules of :mod:`repro.analysis` (unit suffixes, forbidden
calls) read each statement in isolation; the flow rules added with the
whole-program pass (clock-domain taint, workspace aliasing) need to know
*in what order* statements can execute and where paths merge.  This module
lowers one ``ast.FunctionDef`` into basic blocks:

* a block holds a straight-line run of statements; compound statements
  (``if``/``while``/``for``/``try``/``with``) appear **in** a block as
  header markers, but their bodies live in successor blocks — a transfer
  function must only interpret a compound statement's *own* expressions
  (test, iterable, context items), never recurse into its body (see
  :func:`own_exprs` in :mod:`repro.analysis.dataflow`);
* edges over-approximate execution: every ``try`` block may branch to
  every handler, loops carry back-edges, ``break``/``continue``/``return``
  /``raise`` divert to the matching target.  Over-approximation is the
  safe direction for the may-analyses built on top — extra joins widen
  lattice values and can only *mask* findings, never invent them.

Nested function and class definitions are treated as opaque single
statements (their bodies get their own CFGs when the client descends).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

__all__ = ["BasicBlock", "CFG", "build_cfg"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class BasicBlock:
    """A straight-line run of statements with successor edges.

    ``stmts`` holds ``ast.stmt`` nodes plus ``ast.ExceptHandler`` headers
    (a handler's entry block leads with the handler node itself).
    """

    block_id: int
    stmts: List[ast.AST] = field(default_factory=list)
    succs: Set[int] = field(default_factory=set)


@dataclass
class CFG:
    """Basic blocks of one function; ``entry`` and ``exit`` are block ids."""

    blocks: Dict[int, BasicBlock]
    entry: int
    exit: int

    def rpo(self) -> List[int]:
        """Reverse-postorder block ids from ``entry`` (unreachable last)."""
        seen: Set[int] = set()
        order: List[int] = []
        # Iterative DFS (the repo's deepest functions nest well past any
        # comfortable recursion budget once try/except fan-out is added).
        stack: List[tuple[int, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            block_id, edge_index = stack[-1]
            succs = sorted(self.blocks[block_id].succs)
            if edge_index < len(succs):
                stack[-1] = (block_id, edge_index + 1)
                nxt = succs[edge_index]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(block_id)
        order.reverse()
        for block_id in sorted(self.blocks):
            if block_id not in seen:
                order.append(block_id)
        return order


class _Builder:
    def __init__(self) -> None:
        self.blocks: Dict[int, BasicBlock] = {}
        self.exit = self._new()
        #: (continue-target, break-target) per enclosing loop.
        self.loops: List[tuple[int, int]] = []
        #: Handler-entry blocks of enclosing ``try`` statements: any
        #: statement inside the body may transfer there.
        self.handlers: List[List[int]] = []

    def _new(self) -> int:
        block_id = len(self.blocks)
        self.blocks[block_id] = BasicBlock(block_id)
        return block_id

    def _edge(self, src: Optional[int], dst: int) -> None:
        if src is not None:
            self.blocks[src].succs.add(dst)

    def _handler_edges(self, src: Optional[int]) -> None:
        if src is None:
            return
        for handler_entries in self.handlers:
            for entry in handler_entries:
                self._edge(src, entry)

    # -- statement lowering --------------------------------------------------

    def lower_body(self, stmts: List[ast.stmt], current: Optional[int]) -> Optional[int]:
        """Lower ``stmts`` starting in block ``current``; return the block
        control falls out of, or ``None`` when every path diverts."""
        for stmt in stmts:
            if current is None:
                # Dead code after return/raise/break; park it in a fresh
                # unreachable block so its expressions still get visited.
                current = self._new()
            current = self.lower_stmt(stmt, current)
        return current

    def lower_stmt(self, stmt: ast.stmt, current: int) -> Optional[int]:
        if isinstance(stmt, ast.If):
            self.blocks[current].stmts.append(stmt)
            self._handler_edges(current)
            after = self._new()
            then_entry = self._new()
            self._edge(current, then_entry)
            then_out = self.lower_body(stmt.body, then_entry)
            self._edge(then_out, after)
            if stmt.orelse:
                else_entry = self._new()
                self._edge(current, else_entry)
                else_out = self.lower_body(stmt.orelse, else_entry)
                self._edge(else_out, after)
            else:
                self._edge(current, after)
            return after
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = self._new()
            self._edge(current, header)
            self.blocks[header].stmts.append(stmt)
            self._handler_edges(header)
            after = self._new()
            body_entry = self._new()
            self._edge(header, body_entry)
            self._edge(header, after)
            self.loops.append((header, after))
            body_out = self.lower_body(stmt.body, body_entry)
            self.loops.pop()
            self._edge(body_out, header)
            if stmt.orelse:
                else_entry = self._new()
                self._edge(header, else_entry)
                else_out = self.lower_body(stmt.orelse, else_entry)
                self._edge(else_out, after)
            return after
        if isinstance(stmt, ast.Try):
            # Handlers may be entered from anywhere inside body/else.
            handler_entries = [self._new() for _ in stmt.handlers]
            self.handlers.append(handler_entries)
            body_entry = self._new()
            self._edge(current, body_entry)
            for entry in handler_entries:
                self._edge(current, entry)
            body_out = self.lower_body(stmt.body, body_entry)
            if stmt.orelse:
                body_out = self.lower_body(stmt.orelse, body_out)
            self.handlers.pop()
            after_try = self._new()
            self._edge(body_out, after_try)
            for handler, entry in zip(stmt.handlers, handler_entries):
                self.blocks[entry].stmts.append(handler)
                handler_out = self.lower_body(handler.body, entry)
                self._edge(handler_out, after_try)
            if stmt.finalbody:
                final_out = self.lower_body(stmt.finalbody, after_try)
                after = self._new()
                self._edge(final_out, after)
                return after
            return after_try
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.blocks[current].stmts.append(stmt)
            self._handler_edges(current)
            return self.lower_body(stmt.body, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.blocks[current].stmts.append(stmt)
            self._handler_edges(current)
            self._edge(current, self.exit)
            return None
        if isinstance(stmt, ast.Break):
            self.blocks[current].stmts.append(stmt)
            if self.loops:
                self._edge(current, self.loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            self.blocks[current].stmts.append(stmt)
            if self.loops:
                self._edge(current, self.loops[-1][0])
            return None
        # Simple statement — including nested def/class, which the flow
        # rules analyze separately.
        self.blocks[current].stmts.append(stmt)
        self._handler_edges(current)
        return current


def build_cfg(func: FunctionNode) -> CFG:
    """Lower ``func``'s body into a :class:`CFG`."""
    builder = _Builder()
    entry = builder._new()
    out = builder.lower_body(func.body, entry)
    builder._edge(out, builder.exit)
    return CFG(blocks=builder.blocks, entry=entry, exit=builder.exit)
