"""Rule ``sim-determinism``: entropy and clocks must be injectable.

The discrete-event simulation is reproducible by construction: every
stochastic subsystem draws from a named stream handed out by
:mod:`repro.sim.rng` (one root seed reproduces a run bit-for-bit), and the
fault-tolerant runtime charges all time against an injectable
``ManualClock`` so tests never sleep and replay recovery stays exact.  Any
code inside the simulation core that reaches for ``np.random.default_rng``
directly, the stdlib ``random`` module, or a wall-clock read re-introduces
the nondeterminism those layers exist to remove — and it does so silently,
because the run still *works*, it just stops being reproducible.

This rule scans the simulation-critical paths (``sim/`` and
``partition/runtime.py`` by default) for:

* random-state construction or draws bypassing ``sim/rng.py``
  (``np.random.default_rng``, ``np.random.seed``, ``np.random.<dist>``,
  ``random.*``, ``np.random.RandomState``);
* wall-clock reads bypassing the injectable clock (``time.time``,
  ``time.perf_counter``, ``time.monotonic``, ``time.sleep``,
  ``datetime.now`` and friends).

``sim/rng.py`` itself is exempt: it is the sanctioned constructor.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.engine import Finding, ParsedModule, Project, Rule, register

__all__ = ["SimDeterminismRule"]

#: Path fragments (posix) selecting the simulation-critical modules.
#: ``repro/sim/`` covers fastforward.py; warmstart drives cross-epoch
#: search reuse and must be replayable bit-exactly too.
SCOPE_FRAGMENTS: Tuple[str, ...] = (
    "repro/sim/",
    "repro/partition/runtime.py",
    "repro/partition/dynamic.py",
    "repro/partition/warmstart.py",
    # Wide-area pools are synthesized from RandomStreams and the topology
    # inference feeds SearchCache fingerprints — both must replay
    # bit-exactly for collapsed decisions to be reproducible.
    "repro/hardware/presets.py",
    "repro/hardware/topology.py",
    # The decision server's batching, admission (token buckets), and
    # latency accounting all run off injected clocks so tests drive them
    # with manual time — an inline wall-clock read would break that.
    "repro/server/",
)

#: Files allowed to construct entropy: the named-stream factory itself.
EXEMPT_SUFFIXES: Tuple[str, ...] = ("repro/sim/rng.py",)

_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.sleep",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)


def _dotted(node: ast.expr) -> str:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _in_scope(relpath: str) -> bool:
    return any(fragment in relpath for fragment in SCOPE_FRAGMENTS) and not any(
        relpath.endswith(suffix) for suffix in EXEMPT_SUFFIXES
    )


@register
class SimDeterminismRule(Rule):
    """Entropy must flow through sim/rng.py; time through injectable clocks."""

    name = "sim-determinism"
    description = (
        "In sim/ and partition/runtime.py, flags entropy sources that "
        "bypass the sim/rng.py named streams and wall-clock reads that "
        "bypass the injectable clock — both break bit-exact replay."
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if not _in_scope(module.relpath):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            dotted = _dotted(func)
            segments = dotted.split(".")
            if dotted in _CLOCK_CALLS:
                yield self._finding(
                    module,
                    node,
                    f"wall-clock read {dotted}() bypasses the injectable "
                    f"clock (ManualClock / simulator time); runs stop being "
                    f"reproducible",
                )
            elif segments[0] == "random":
                yield self._finding(
                    module,
                    node,
                    f"{dotted}() draws from the stdlib global random state; "
                    f"use a sim/rng.py named stream instead",
                )
            elif "random" in segments[:-1] or segments[-1] in (
                "default_rng",
                "RandomState",
                "seed",
            ):
                # np.random.<anything>, numpy.random.<anything>, and bare
                # <x>.default_rng()/<x>.seed() constructions.
                yield self._finding(
                    module,
                    node,
                    f"{dotted}() constructs or draws entropy outside the "
                    f"sim/rng.py named streams; a fixed root seed no longer "
                    f"reproduces the run",
                )

    def _finding(self, module: ParsedModule, node: ast.Call, message: str) -> Finding:
        return Finding(
            path=module.relpath,
            line=node.lineno,
            col=node.col_offset + 1,
            rule=self.name,
            message=message,
        )
