"""Rule ``unit-flow``: interprocedural unit inference via call summaries.

``unit-consistency`` stops at call boundaries: a call to anything outside
:data:`repro.units.FUNCTION_SIGNATURES` returns "unknown", so a function
that returns microseconds can be added to a millisecond total as long as
the addition happens in the *caller*.  This rule closes that hole with
the module-granular call graph (:mod:`repro.analysis.callgraph`):

* every analyzed function gets a **summary** — per-parameter units from
  the naming conventions (``def charge(elapsed_ms, ...)``) and a return
  unit, either declared by the function's own name (``def epoch_cost_ms``)
  or inferred by running the unit checker over its body with parameter
  units seeded.  Summaries iterate to a fixpoint so chains of helpers
  resolve (``a()`` returning ``b() * US_PER_MS`` …);
* each module is then re-checked with a resolver that answers call sites
  from those summaries, exactly as if every project function had a
  ``FUNCTION_SIGNATURES`` entry.

Reported findings are the *difference* against the intra-procedural
baseline: anything ``unit-consistency`` already reports stays owned by
that rule, and ``unit-flow`` adds only what the call-graph knowledge
exposed — argument units contradicting a callee's parameter conventions,
and arithmetic that only becomes checkable once a callee's return unit is
known.  Resolution limits (dynamic dispatch, ``**kwargs`` forwarding —
see docs/static-analysis.md) degrade to "unknown", never to a finding.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, project_callgraph
from repro.analysis.engine import Finding, ParsedModule, Project, Rule, register
from repro.analysis.unitcheck import (
    CallResolver,
    Signature,
    check_module_units,
    infer_function_return_unit,
    name_unit,
)
from repro.units import Unit

__all__ = ["UnitFlowRule"]

#: Summary fixpoint rounds; helper chains deeper than this stop
#: propagating their return units (conservatively silent).
_MAX_ROUNDS = 8


def _summaries(graph: CallGraph) -> Dict[Tuple[str, str], Signature]:
    """Fixpoint (param units, param names, return unit) per function."""
    summaries: Dict[Tuple[str, str], Signature] = {}
    for info in graph.functions:
        param_units = tuple(name_unit(param) for param in info.params)
        summaries[info.key] = (param_units, info.params, None)
    for _ in range(_MAX_ROUNDS):
        changed = False
        resolver = _make_resolver(graph, summaries)
        for info in graph.functions:
            returned: Optional[Unit] = infer_function_return_unit(
                info.module,
                info.node,
                resolver=resolver(info.module),
                class_name=info.class_name,
            )
            current = summaries[info.key]
            if current[2] != returned:
                summaries[info.key] = (current[0], current[1], returned)
                changed = True
        if not changed:
            break
    return summaries


def _make_resolver(
    graph: CallGraph, summaries: Dict[Tuple[str, str], Signature]
) -> Callable[[ParsedModule], CallResolver]:
    """A per-module factory of :data:`~repro.analysis.unitcheck.CallResolver`."""

    def for_module(module: ParsedModule) -> CallResolver:
        def resolve(
            call: ast.Call, func_name: str, class_name: Optional[str]
        ) -> Optional[Signature]:
            info = graph.resolve(module, call, enclosing_class=class_name)
            if info is None:
                return None
            signature = summaries.get(info.key)
            if signature is None:
                return None
            param_units, _, return_unit = signature
            if all(unit is None for unit in param_units) and return_unit is None:
                return None  # nothing known; keep the call fully opaque
            return signature

        return resolve

    return for_module


@register
class UnitFlowRule(Rule):
    """Units flow through function signatures via call-graph summaries."""

    name = "unit-flow"
    description = (
        "Extends unit-consistency across call boundaries: function "
        "parameter and return units are summarized from the naming "
        "conventions and body inference, then every call site is checked "
        "against its resolved callee — so a helper returning microseconds "
        "cannot be folded into a millisecond total two modules away."
    )
    scope = "project"

    def check(self, project: Project) -> Iterator[Finding]:
        graph = project_callgraph(project)
        summaries = _summaries(graph)
        resolver_factory = _make_resolver(graph, summaries)
        for module in project.modules:
            baseline: Set[Tuple[int, int, str]] = {
                (f.line, f.col, f.message)
                for f in check_module_units(module)
            }
            flowed: List[Finding] = check_module_units(
                module,
                resolver=resolver_factory(module),
                rule_name=self.name,
            )
            for finding in flowed:
                if (finding.line, finding.col, finding.message) in baseline:
                    continue  # owned by unit-consistency
                yield finding
