"""Rule ``unit-consistency``: dimensional analysis of cost-model arithmetic.

The paper's printed Eq 3 is dimensionally wrong (the DESIGN.md erratum), and
this codebase mixes four time scales (s, ms, µs and µs/op instruction
rates) plus bytes/bits-per-second network quantities — exactly the setting
where an added µs quantity silently corrupts a ms total.  This rule infers
units through arithmetic from the machine-readable conventions tables in
:mod:`repro.units`:

* identifier suffixes (``elapsed_ms``, ``bandwidth_bps``, ``usec_per_op``)
  and whole names (``nbytes``) declare units;
* conversion constants (``US_PER_MS`` is µs/ms) and helpers
  (``usec_to_msec`` is µs → ms) transform them, with exponents cancelling
  through ``*``/``/``;
* ``+``/``-``/comparisons between *different known, non-dimensionless*
  units are findings, as are call arguments whose inferred unit contradicts
  a :data:`repro.units.FUNCTION_SIGNATURES` entry, assignments or returns
  contradicting the target's naming convention, and bare ``* 1000``-style
  conversion shortcuts that bypass the named constants.

Inference is deliberately conservative: an unknown operand makes a product
*inexact* (its known dimensions still propagate, but only the shortcut
check fires on inexact units), and additions involving inexact or
dimensionless operands are never flagged.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.analysis.engine import Finding, ParsedModule, Project, Rule, register
from repro.units import (
    CONSTANT_UNITS,
    FUNCTION_SIGNATURES,
    NAME_UNITS,
    SUFFIX_ATOMS,
    Unit,
)

__all__ = [
    "UnitConsistencyRule",
    "name_unit",
    "format_unit",
    "Signature",
    "CallResolver",
    "check_module_units",
    "infer_function_return_unit",
]

#: Dimensions (base symbols -> exponents) plus whether every factor that
#: produced them was known.  ``({}, False)`` is "completely unknown".
Inferred = Tuple[Dict[str, int], bool]

UNKNOWN: Inferred = ({}, False)
DIMENSIONLESS: Inferred = ({}, True)

#: A callable signature as the checker consumes it: per-parameter units
#: (``None`` = no convention), parameter names, return unit (``None`` =
#: unknown).  :data:`repro.units.FUNCTION_SIGNATURES` is the fully-known
#: special case; call-graph summaries (see :mod:`repro.analysis.unitflow`)
#: are the partially-known general case.
Signature = Tuple[Tuple[Optional[Unit], ...], Tuple[str, ...], Optional[Unit]]

#: Resolves a call site to a :data:`Signature` using whole-program
#: knowledge; receives the call node, the plain callee name, and the
#: lexically enclosing class name (for ``self.method()`` resolution).
CallResolver = Callable[[ast.Call, str, Optional[str]], Optional[Signature]]

#: Atoms too ambiguous to match a *whole* identifier (``s``, ``op`` are
#: common non-quantity variable names); they still match as suffixes.
_WHOLE_NAME_BLOCKLIST = frozenset({"s", "sec", "op", "pdu", "byte", "bit"})

#: Bare scale factors that smell like a unit conversion.
_TIME_SHORTCUT_LITERALS = frozenset({1000, 1000.0, 0.001, 1e6, 1e-6})
_BYTE_SHORTCUT_LITERALS = frozenset({8, 8.0})
_TIME_SYMBOLS = ("ms", "us", "s")
_BYTE_SYMBOLS = ("bytes", "bits")

_PASSTHROUGH_CALLS = frozenset({"min", "max", "abs", "float", "round"})
_PASSTHROUGH_ATTR_CALLS = frozenset({"minimum", "maximum", "abs", "asarray"})


def _normalize(dims: Dict[str, int]) -> Dict[str, int]:
    return {sym: exp for sym, exp in dims.items() if exp != 0}


def _combine(a: Dict[str, int], b: Dict[str, int], sign: int) -> Dict[str, int]:
    out = dict(a)
    for sym, exp in b.items():
        out[sym] = out.get(sym, 0) + sign * exp
    return _normalize(out)


def format_unit(dims: Unit) -> str:
    """Human-readable unit: ``{"bits": 1, "s": -1}`` -> ``"bits/s"``."""
    num = [
        sym if exp == 1 else f"{sym}^{exp}"
        for sym, exp in sorted(dims.items())
        if exp > 0
    ]
    den = [
        sym if exp == -1 else f"{sym}^{-exp}"
        for sym, exp in sorted(dims.items())
        if exp < 0
    ]
    if not num and not den:
        return "dimensionless"
    text = "·".join(num) if num else "1"
    if den:
        text += "/" + "·".join(den)
    return text


def name_unit(name: str) -> Optional[Unit]:
    """The unit an identifier declares through the naming conventions."""
    if name in CONSTANT_UNITS:
        return CONSTANT_UNITS[name]
    lowered = name.lower()
    if lowered in NAME_UNITS:
        return NAME_UNITS[lowered]
    tokens = [tok for tok in lowered.split("_") if tok]
    if len(tokens) >= 3 and tokens[-2] == "per":
        # ``usec_per_op``: X per Y -> X/Y.
        top, bottom = tokens[-3], tokens[-1]
        if top in SUFFIX_ATOMS and bottom in SUFFIX_ATOMS:
            return _combine(dict(SUFFIX_ATOMS[top]), dict(SUFFIX_ATOMS[bottom]), -1)
        return None
    if len(tokens) >= 3 and tokens[-3] == "per":
        # ``send_per_byte_ms``: per Y, X -> X/Y.
        top, bottom = tokens[-1], tokens[-2]
        if top in SUFFIX_ATOMS and bottom in SUFFIX_ATOMS:
            return _combine(dict(SUFFIX_ATOMS[top]), dict(SUFFIX_ATOMS[bottom]), -1)
        return None
    if "per" in tokens:
        # A rate name we cannot fully resolve; never mislabel it with the
        # bare last-token unit (``per_frame_ms`` is ms/frame, not ms).
        return None
    last = tokens[-1] if tokens else ""
    if last not in SUFFIX_ATOMS:
        return None
    if len(tokens) == 1 and last in _WHOLE_NAME_BLOCKLIST:
        return None
    return SUFFIX_ATOMS[last]


class _ScopeChecker:
    """Linear walk of one scope's statements with local unit propagation."""

    def __init__(
        self,
        module: ParsedModule,
        findings: List[Finding],
        *,
        resolver: Optional[CallResolver] = None,
        class_name: Optional[str] = None,
        rule_name: Optional[str] = None,
    ) -> None:
        self.module = module
        self.findings = findings
        self.env: Dict[str, Inferred] = {}
        #: Whole-program call resolution hook (None = intra-procedural).
        self.resolver = resolver
        #: Lexically enclosing class, for ``self.method()`` resolution.
        self.class_name = class_name
        #: Rule the findings are reported under (unit-consistency default).
        self.rule_name = rule_name or UnitConsistencyRule.name

    # -- reporting -----------------------------------------------------------

    def _report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.module.relpath,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.rule_name,
                message=message,
            )
        )

    # -- statements ----------------------------------------------------------

    def check_stmts(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self.check_stmt(stmt)

    def check_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _check_function(
                self.module,
                stmt,
                self.findings,
                resolver=self.resolver,
                class_name=self.class_name,
                rule_name=self.rule_name,
            )
        elif isinstance(stmt, ast.ClassDef):
            nested = _ScopeChecker(
                self.module,
                self.findings,
                resolver=self.resolver,
                class_name=stmt.name,
                rule_name=self.rule_name,
            )
            nested.check_stmts(stmt.body)
        elif isinstance(stmt, ast.Assign):
            value = self.infer(stmt.value)
            for target in stmt.targets:
                self._assign(target, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self.infer(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            target_unit = self._target_unit(stmt.target)
            value = self.infer(stmt.value)
            combined = self._binop_units(
                stmt.op, target_unit, value, stmt, describe="augmented assignment"
            )
            self._assign(stmt.target, combined, check=False)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.infer(stmt.value)  # return conventions checked by caller
        elif isinstance(stmt, (ast.If, ast.While)):
            self.infer(stmt.test)
            self.check_stmts(stmt.body)
            self.check_stmts(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self.infer(stmt.iter)
            self.check_stmts(stmt.body)
            self.check_stmts(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.infer(item.context_expr)
            self.check_stmts(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.check_stmts(stmt.body)
            for handler in stmt.handlers:
                self.check_stmts(handler.body)
            self.check_stmts(stmt.orelse)
            self.check_stmts(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.infer(stmt.value)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.infer(child)

    def _target_unit(self, target: ast.expr) -> Inferred:
        if isinstance(target, ast.Name):
            declared = name_unit(target.id)
            if declared is not None:
                return (dict(declared), True)
            return self.env.get(target.id, UNKNOWN)
        if isinstance(target, ast.Attribute):
            declared = name_unit(target.attr)
            if declared is not None:
                return (dict(declared), True)
        return UNKNOWN

    def _assign(self, target: ast.expr, value: Inferred, *, check: bool = True) -> None:
        if isinstance(target, ast.Attribute):
            name = target.attr
        elif isinstance(target, ast.Name):
            name = target.id
        else:
            return
        declared = name_unit(name)
        dims, exact = value
        if (
            check
            and declared is not None
            and exact
            and dims
            and _normalize(dict(declared)) != dims
        ):
            self._report(
                target,
                f"{name} is {format_unit(declared)} by naming convention "
                f"but is assigned a {format_unit(dims)} value",
            )
        if isinstance(target, ast.Name):
            if declared is not None:
                self.env[target.id] = (dict(declared), True)
            else:
                self.env[target.id] = value

    # -- expressions ---------------------------------------------------------

    def infer_cached(self, node: ast.expr) -> Inferred:
        """Re-infer without re-reporting (used for return statements)."""
        quiet = _ScopeChecker(
            self.module,
            [],
            resolver=self.resolver,
            class_name=self.class_name,
            rule_name=self.rule_name,
        )
        quiet.env = self.env
        return quiet.infer(node)

    def infer(self, node: ast.expr) -> Inferred:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(node.value, (int, float)):
                return UNKNOWN
            return DIMENSIONLESS
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            declared = name_unit(node.id)
            return (dict(declared), True) if declared is not None else UNKNOWN
        if isinstance(node, ast.Attribute):
            self.infer_children(node)
            declared = name_unit(node.attr)
            return (dict(declared), True) if declared is not None else UNKNOWN
        if isinstance(node, ast.Subscript):
            base = self.infer(node.value)
            self.infer(node.slice)
            return base
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.BinOp):
            left = self.infer(node.left)
            right = self.infer(node.right)
            self._shortcut_check(node, left, right)
            return self._binop_units(node.op, left, right, node)
        if isinstance(node, ast.Compare):
            units = [self.infer(node.left)] + [self.infer(c) for c in node.comparators]
            for (ld, lx), (rd, rx) in zip(units, units[1:]):
                if lx and rx and ld and rd and ld != rd:
                    self._report(
                        node,
                        f"comparing a {format_unit(ld)} quantity "
                        f"with a {format_unit(rd)} quantity",
                    )
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            body = self.infer(node.body)
            orelse = self.infer(node.orelse)
            if body == orelse:
                return body
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.infer(value)
            return UNKNOWN
        self.infer_children(node)
        return UNKNOWN

    def infer_children(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.infer(child)
            elif isinstance(child, ast.comprehension):
                self.infer(child.iter)
                for cond in child.ifs:
                    self.infer(cond)

    def _binop_units(
        self,
        op: ast.operator,
        left: Inferred,
        right: Inferred,
        node: ast.AST,
        *,
        describe: str = "",
    ) -> Inferred:
        (ld, lx), (rd, rx) = left, right
        exact = lx and rx
        if isinstance(op, ast.Mult):
            return (_combine(ld, rd, +1), exact)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return (_combine(ld, rd, -1), exact)
        if isinstance(op, ast.Pow):
            return UNKNOWN
        if isinstance(op, (ast.Add, ast.Sub)):
            if exact and ld and rd and ld != rd:
                opname = "+" if isinstance(op, ast.Add) else "-"
                prefix = f"{describe}: " if describe else ""
                self._report(
                    node,
                    f"{prefix}dimensional mismatch: {format_unit(ld)} {opname} "
                    f"{format_unit(rd)} (convert explicitly via repro.units)",
                )
                return (ld, True)
            if lx and rx:
                return (ld or rd, True)
            if ld == rd:
                return (ld, False)
            return UNKNOWN
        if isinstance(op, ast.Mod):
            return left
        return UNKNOWN

    def _shortcut_check(self, node: ast.BinOp, left: Inferred, right: Inferred) -> None:
        """Flag ``* 1000`` / ``/ 8``-style conversions bypassing the tables."""
        if not isinstance(node.op, (ast.Mult, ast.Div)):
            return
        for operand, other_unit in ((node.right, left), (node.left, right)):
            if not (
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, (int, float))
                and not isinstance(operand.value, bool)
            ):
                continue
            dims = other_unit[0]
            value = operand.value
            # Only a *pure* time or data quantity smells like a conversion;
            # scaling a compound rate (bits/s -> Mb/s for display) does not.
            if value in _TIME_SHORTCUT_LITERALS and any(
                dims == {sym: 1} for sym in _TIME_SYMBOLS
            ):
                hint = "US_PER_MS / MS_PER_SECOND or a repro.units helper"
            elif value in _BYTE_SHORTCUT_LITERALS and any(
                dims == {sym: 1} for sym in _BYTE_SYMBOLS
            ):
                hint = "BITS_PER_BYTE"
            else:
                continue
            self._report(
                node,
                f"unit-conversion shortcut: scaling a {format_unit(dims)} "
                f"quantity by bare {value!r}; use {hint}",
            )

    def _infer_call(self, node: ast.Call) -> Inferred:
        func = node.func
        func_name = ""
        if isinstance(func, ast.Name):
            func_name = func.id
        elif isinstance(func, ast.Attribute):
            func_name = func.attr
            self.infer(func.value)
        arg_units = [self.infer(arg) for arg in node.args]
        kw_units = {
            kw.arg: self.infer(kw.value) for kw in node.keywords if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:
                self.infer(kw.value)

        table_signature = FUNCTION_SIGNATURES.get(func_name)
        resolved: Optional[Signature] = None
        if table_signature is not None:
            param_units, param_names, return_unit = table_signature
            resolved = (tuple(param_units), param_names, return_unit)
        elif self.resolver is not None and func_name:
            resolved = self.resolver(node, func_name, self.class_name)
        if resolved is not None:
            opt_units, param_names, opt_return = resolved
            for index, (expected, pname) in enumerate(zip(opt_units, param_names)):
                if expected is None:
                    continue
                if index < len(arg_units):
                    actual = arg_units[index]
                elif pname in kw_units:
                    actual = kw_units[pname]
                else:
                    continue
                dims, exact = actual
                if exact and dims and dims != _normalize(dict(expected)):
                    self._report(
                        node,
                        f"{func_name}() argument {index + 1} ({pname}) expects "
                        f"{format_unit(expected)}, got {format_unit(dims)}",
                    )
            if opt_return is not None:
                return (dict(opt_return), True)

        if isinstance(func, ast.Name) and func_name in _PASSTHROUGH_CALLS:
            known = [u for u in arg_units if u[1]]
            if known and all(u == known[0] for u in known) and len(known) == len(
                arg_units
            ):
                return known[0]
            return UNKNOWN
        if isinstance(func, ast.Attribute) and func_name in _PASSTHROUGH_ATTR_CALLS:
            known = [u for u in arg_units if u[1]]
            if known and all(u == known[0] for u in known) and len(known) == len(
                arg_units
            ):
                return known[0]
            return UNKNOWN
        declared = name_unit(func_name) if func_name else None
        if declared is not None:
            return (dict(declared), True)
        return UNKNOWN


def _own_returns(func: ast.FunctionDef | ast.AsyncFunctionDef) -> List[ast.Return]:
    """``Return`` statements of ``func`` itself, not of nested functions."""
    out: List[ast.Return] = []
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Return):
            out.append(node)
            continue
        stack.extend(ast.iter_child_nodes(node))
    return out


def _check_function(
    module: ParsedModule,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    findings: List[Finding],
    *,
    resolver: Optional[CallResolver] = None,
    class_name: Optional[str] = None,
    rule_name: Optional[str] = None,
) -> None:
    checker = _ScopeChecker(
        module,
        findings,
        resolver=resolver,
        class_name=class_name,
        rule_name=rule_name,
    )
    declared = name_unit(func.name)
    checker.check_stmts(func.body)
    if declared is None:
        return
    for stmt in _own_returns(func):
        if stmt.value is None:
            continue
        dims, exact = checker.infer_cached(stmt.value)
        if exact and dims and dims != _normalize(dict(declared)):
            checker._report(
                stmt,
                f"{func.name}() returns {format_unit(declared)} by naming "
                f"convention but this return value is {format_unit(dims)}",
            )


def check_module_units(
    module: ParsedModule,
    *,
    resolver: Optional[CallResolver] = None,
    rule_name: Optional[str] = None,
) -> List[Finding]:
    """All unit findings for one module, optionally with whole-program
    call resolution (the :mod:`repro.analysis.unitflow` entry point)."""
    findings: List[Finding] = []
    checker = _ScopeChecker(module, findings, resolver=resolver, rule_name=rule_name)
    checker.check_stmts(module.tree.body)
    return findings


def infer_function_return_unit(
    module: ParsedModule,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    resolver: Optional[CallResolver] = None,
    class_name: Optional[str] = None,
) -> Optional[Unit]:
    """The unit ``func`` returns, if the checker can prove one.

    The function's *name* convention wins outright; otherwise every
    ``return`` expression must infer to the same exact, non-dimensionless
    unit under parameter units seeded from the naming conventions.
    """
    declared = name_unit(func.name)
    if declared is not None:
        return dict(declared)
    quiet = _ScopeChecker(
        module, [], resolver=resolver, class_name=class_name
    )
    args = func.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        unit = name_unit(arg.arg)
        if unit is not None:
            quiet.env[arg.arg] = (dict(unit), True)
    quiet.check_stmts(func.body)
    units: List[Dict[str, int]] = []
    for stmt in _own_returns(func):
        if stmt.value is None:
            return None
        dims, exact = quiet.infer_cached(stmt.value)
        if not exact or not dims:
            return None
        units.append(dims)
    if units and all(unit == units[0] for unit in units):
        return units[0]
    return None


@register
class UnitConsistencyRule(Rule):
    """Infer units through arithmetic; flag dimensionally invalid mixes."""

    name = "unit-consistency"
    description = (
        "Infers physical units (ms/us/s/bytes/bits-per-second/ops) from the "
        "repro.units naming conventions and flags dimensionally invalid "
        "arithmetic — the shape of the paper's printed Eq 3 erratum."
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            yield from check_module_units(module)
