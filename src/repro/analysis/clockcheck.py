"""Rule ``clock-domain``: sim-clock and host-clock values must never mix.

The telemetry subsystem (PR 5) split time into two *domains*: the
simulated clock (:class:`~repro.partition.runtime.ManualClock`,
``sim.now``, every ``*_sim_ms`` quantity) is deterministic and
byte-reproducible; the host clock (``time.perf_counter`` and friends,
``*_host_ms`` / ``wall_*`` quantities) is not.  The two count different
things: adding a host-measured duration to a simulated timestamp, or
comparing a projected simulated epoch cost against a wall-clock reading,
produces a number that silently depends on the machine the run happened
on — exactly the bug class the byte-reproducible snapshot guarantee
exists to exclude.

This is a *flow* property: the host read happens in one function, the
arithmetic three calls away.  The rule runs a forward taint analysis over
each function's CFG (:mod:`repro.analysis.cfg` /
:mod:`repro.analysis.dataflow`), seeds taint from

* host sources — ``time.time`` / ``time.perf_counter`` / ``time.monotonic``
  / ``time.process_time`` (and ``_ns`` variants), and identifiers whose
  name tokens say host (``host``/``wall``) next to a time-ish token;
* sim sources — identifiers with a ``sim`` token (``epoch_sim_ms``),
  ``ManualClock(...)`` objects and ``.now`` / ``.advance()`` reads off
  clock-named objects —

and propagates it interprocedurally through call summaries from the
module-granular call graph: a function returning a sim-tainted value
taints its call sites, and passing a host-tainted argument to a
``*_sim_ms`` parameter is reported at the call.

Findings fire only on ``+``/``-``/comparisons between one *definitely*
sim and one *definitely* host operand; ratios (``sim_ms / wall_ms`` — a
speedup) and anything partially unknown stay silent.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.analysis.callgraph import CallGraph, project_callgraph
from repro.analysis.cfg import FunctionNode, build_cfg
from repro.analysis.dataflow import Env, FlowAnalysis, own_exprs, solve
from repro.analysis.engine import Finding, ParsedModule, Project, Rule, register

__all__ = ["ClockDomainRule", "name_domain"]

Domain = FrozenSet[str]

SIM: Domain = frozenset({"sim"})
HOST: Domain = frozenset({"host"})
#: A ManualClock-like object (not itself a time value; ``.now`` is).
SIMCLOCK: Domain = frozenset({"simclock"})
UNKNOWN: Domain = frozenset()

_HOST_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)

#: A ``sim``/``host`` token only marks a *time* value when the name also
#: looks temporal; ``sim_config`` or ``hostname`` carry no clock domain.
_TIME_HINT_TOKENS = frozenset(
    {
        "ms",
        "msec",
        "us",
        "usec",
        "s",
        "sec",
        "seconds",
        "elapsed",
        "time",
        "now",
        "start",
        "end",
        "clock",
        "deadline",
        "stamp",
        "t",
        "t0",
        "t1",
    }
)

_PASSTHROUGH_CALLS = frozenset({"min", "max", "abs", "float", "round", "sum"})


def name_domain(name: str) -> Domain:
    """The clock domain an identifier declares through its name tokens."""
    tokens = set(name.lower().split("_"))
    if "sim" in tokens:
        domain = SIM
    elif "host" in tokens or "wall" in tokens:
        domain = HOST
    else:
        return UNKNOWN
    if tokens & _TIME_HINT_TOKENS:
        return domain
    return UNKNOWN


def _dotted(node: ast.expr) -> str:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _clockish_base(node: ast.expr) -> bool:
    """Whether ``node`` names a clock object by convention (``clock``,
    ``self._clock``, ``sim_clock``, ``sim`` ...)."""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return False
    tokens = set(name.lower().split("_"))
    return bool(tokens & {"clock", "sim"})


def _describe(domain: Domain) -> str:
    return "sim-clock" if domain == SIM else "host-clock"


class _ClockFlow(FlowAnalysis[Domain]):
    """Per-function taint propagation; reports when ``findings`` is set."""

    def __init__(
        self,
        module: ParsedModule,
        func: FunctionNode,
        summaries: Dict[Tuple[str, str], Domain],
        graph: CallGraph,
        class_name: Optional[str],
    ) -> None:
        self.module = module
        self.func = func
        self.summaries = summaries
        self.graph = graph
        self.class_name = class_name
        self.findings: Optional[List[Finding]] = None
        #: Domains of values flowing out of ``return`` statements.
        self.returned: Domain = UNKNOWN

    # -- lattice -------------------------------------------------------------

    def initial_env(self) -> Env[Domain]:
        env: Env[Domain] = {}
        args = self.func.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            domain = name_domain(arg.arg)
            if domain:
                env[arg.arg] = domain
        return env

    def join_values(self, a: Optional[Domain], b: Optional[Domain]) -> Optional[Domain]:
        if a is None:
            return b
        if b is None:
            return a
        return a | b

    # -- reporting -----------------------------------------------------------

    def _report(self, node: ast.AST, message: str) -> None:
        if self.findings is None:
            return
        finding = Finding(
            path=self.module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=ClockDomainRule.name,
            message=message,
        )
        if finding not in self.findings:
            self.findings.append(finding)

    # -- transfer ------------------------------------------------------------

    def transfer(self, stmt: ast.AST, env: Env[Domain]) -> Env[Domain]:
        out = dict(env)
        if isinstance(stmt, ast.Assign):
            value = self._infer(stmt.value, out)
            for target in stmt.targets:
                self._assign(target, value, out)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._infer(stmt.value, out), out)
        elif isinstance(stmt, ast.AugAssign):
            target_domain = self._target_domain(stmt.target, out)
            value = self._infer(stmt.value, out)
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                self._check_mix(stmt, target_domain, value, "augmented assignment")
            self._assign(stmt.target, target_domain | value, out, check=False)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returned = self.returned | self._infer(stmt.value, out)
        else:
            for expr in own_exprs(stmt):
                self._infer(expr, out)
        return out

    def _target_domain(self, target: ast.expr, env: Env[Domain]) -> Domain:
        if isinstance(target, ast.Name):
            declared = name_domain(target.id)
            return declared or env.get(target.id, UNKNOWN)
        if isinstance(target, ast.Attribute):
            return name_domain(target.attr)
        return UNKNOWN

    def _assign(
        self,
        target: ast.expr,
        value: Domain,
        env: Env[Domain],
        *,
        check: bool = True,
    ) -> None:
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name is None:
            return
        declared = name_domain(name)
        if (
            check
            and declared in (SIM, HOST)
            and value in (SIM, HOST)
            and declared != value
        ):
            self._report(
                target,
                f"{name} is {_describe(declared)} by naming convention but is "
                f"assigned a {_describe(value)} value",
            )
        if isinstance(target, ast.Name):
            env[target.id] = declared or value

    def _check_mix(
        self, node: ast.AST, left: Domain, right: Domain, context: str = ""
    ) -> None:
        if {left, right} == {SIM, HOST}:
            prefix = f"{context}: " if context else ""
            self._report(
                node,
                f"{prefix}sim-clock and host-clock values mixed: the simulated "
                f"clock and the wall clock count different things (keep domains "
                f"separate or go through an explicit measured-vs-projected "
                f"comparison helper)",
            )

    # -- expression inference ------------------------------------------------

    def _infer(self, node: ast.expr, env: Env[Domain]) -> Domain:
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return name_domain(node.id)
        if isinstance(node, ast.Attribute):
            base = self._infer(node.value, env)
            if node.attr == "now" and (
                "simclock" in base or _clockish_base(node.value)
            ):
                return SIM
            declared = name_domain(node.attr)
            return declared or UNKNOWN
        if isinstance(node, ast.BinOp):
            left = self._infer(node.left, env)
            right = self._infer(node.right, env)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                self._check_mix(node, left, right)
                return left | right
            if isinstance(node.op, ast.Mult):
                return left | right
            # Ratios and remainders across domains are legitimate
            # (speedup = sim_ms / wall_ms) and carry no domain.
            return UNKNOWN
        if isinstance(node, ast.Compare):
            domains = [self._infer(node.left, env)] + [
                self._infer(c, env) for c in node.comparators
            ]
            for left, right in zip(domains, domains[1:]):
                if {left, right} == {SIM, HOST}:
                    self._report(
                        node,
                        "comparing a sim-clock value with a host-clock value: "
                        "the simulated clock and the wall clock count "
                        "different things",
                    )
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self._infer_call(node, env)
        if isinstance(node, ast.UnaryOp):
            return self._infer(node.operand, env)
        if isinstance(node, ast.IfExp):
            self._infer(node.test, env)
            return self._infer(node.body, env) | self._infer(node.orelse, env)
        if isinstance(node, ast.Subscript):
            base = self._infer(node.value, env)
            self._infer(node.slice, env)
            return base
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._infer(value, env)
            return UNKNOWN
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._infer(child, env)
        return UNKNOWN

    def _infer_call(self, node: ast.Call, env: Env[Domain]) -> Domain:
        func = node.func
        dotted = _dotted(func) if isinstance(func, ast.Attribute) else ""
        arg_domains = [self._infer(arg, env) for arg in node.args]
        kw_domains = {
            kw.arg: self._infer(kw.value, env)
            for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:
                self._infer(kw.value, env)

        if dotted in _HOST_CLOCK_CALLS:
            return HOST
        if isinstance(func, ast.Name) and func.id == "ManualClock":
            return SIMCLOCK
        if isinstance(func, ast.Attribute) and func.attr == "advance" and (
            "simclock" in self._infer(func.value, env)
            or _clockish_base(func.value)
        ):
            return SIM
        if isinstance(func, ast.Name) and func.id in _PASSTHROUGH_CALLS:
            out = UNKNOWN
            for domain in arg_domains:
                out = out | domain
            return out

        target = self.graph.resolve(
            self.module, node, enclosing_class=self.class_name
        )
        if target is None:
            return UNKNOWN
        # Check arguments against the callee's parameter name conventions.
        for index, param in enumerate(target.params):
            declared = name_domain(param)
            if declared not in (SIM, HOST):
                continue
            if index < len(arg_domains):
                actual = arg_domains[index]
            elif param in kw_domains:
                actual = kw_domains[param]
            else:
                continue
            if actual in (SIM, HOST) and actual != declared:
                self._report(
                    node,
                    f"{target.name}() parameter {param!r} is "
                    f"{_describe(declared)} by naming convention but receives "
                    f"a {_describe(actual)} value",
                )
        return self.summaries.get(target.key, UNKNOWN)


def _walk_functions(
    module: ParsedModule,
) -> Iterator[Tuple[FunctionNode, Optional[str]]]:
    """Every function definition with its enclosing class name (if any)."""
    stack: List[Tuple[ast.AST, Optional[str]]] = [(module.tree, None)]
    while stack:
        node, class_name = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, class_name
                stack.append((child, class_name))
            elif isinstance(child, ast.ClassDef):
                stack.append((child, child.name))
            else:
                stack.append((child, class_name))


def _run_function(
    module: ParsedModule,
    func: FunctionNode,
    summaries: Dict[Tuple[str, str], Domain],
    graph: CallGraph,
    class_name: Optional[str],
    findings: Optional[List[Finding]],
) -> Domain:
    """Solve one function; return the domain of its returned values."""
    flow = _ClockFlow(module, func, summaries, graph, class_name)
    cfg = build_cfg(func)
    entry_envs = solve(cfg, flow)
    # Replay every block once against its solved entry state, reporting.
    flow.findings = findings
    flow.returned = UNKNOWN
    for block_id in cfg.rpo():
        env = dict(entry_envs.get(block_id, {}))
        for stmt in cfg.blocks[block_id].stmts:
            env = flow.transfer(stmt, env)
    # Only concrete time-value domains propagate through summaries.
    return flow.returned & (SIM | HOST)


@register
class ClockDomainRule(Rule):
    """Forward taint: sim-clock and host-clock values must never be
    added, subtracted, or compared — intra- or inter-procedurally."""

    name = "clock-domain"
    description = (
        "Taint-tracks simulated-clock values (ManualClock, *_sim_ms) and "
        "host-clock values (time.perf_counter, *_host_ms/wall_*) through "
        "assignments and call summaries; flags +/-/comparisons that mix "
        "the two domains — sums of sim and host time depend on the "
        "machine, breaking byte-reproducible snapshots."
    )
    scope = "project"

    #: Summary fixpoint rounds; call chains deeper than this stop
    #: propagating (conservatively silent, never wrong).
    MAX_ROUNDS = 8

    def check(self, project: Project) -> Iterator[Finding]:
        graph = project_callgraph(project)
        summaries: Dict[Tuple[str, str], Domain] = {}
        for _ in range(self.MAX_ROUNDS):
            changed = False
            for info in graph.functions:
                returned = _run_function(
                    info.module, info.node, summaries, graph, info.class_name, None
                )
                if summaries.get(info.key, UNKNOWN) != returned:
                    summaries[info.key] = returned
                    changed = True
            if not changed:
                break
        findings: List[Finding] = []
        for module in project.modules:
            for func, class_name in _walk_functions(module):
                _run_function(module, func, summaries, graph, class_name, findings)
        yield from sorted(findings)
