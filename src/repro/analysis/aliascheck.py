"""Rule ``workspace-escape``: reusable scratch must not leak or be resold.

The array engine's whole speedup rests on *borrowing*: every kernel
writes into preallocated :class:`~repro.partition.arrayengine.ArrayWorkspace`
buffers, ``score_block`` hands back a **view** of ``ws.t_cycle`` that the
very next ``load_rows`` overwrites, and the warm-start
:class:`~repro.partition.warmstart.SearchCache` keeps whole engines (and
their workspaces) alive across epochs.  The invariant that keeps all of
this exact (PR 6's bit-identical-decisions guarantee) is temporal: a
borrowed view must be consumed — or explicitly ``.copy()``-ed — before
the workspace is reused, and anything stored into a longer-lived
structure (a returned value, ``self``, a frontier, a cache entry) must
*own* its memory.  The same discipline applies to the telemetry
ring buffer: :class:`~repro.telemetry.ringbuf.RingBuffer` internals leave
through ``snapshot()`` tuples, never as the live ``deque``.

This rule tracks borrows with a forward dataflow over each function's
CFG, interprocedurally through call summaries (a function returning a
workspace view taints its call sites):

* **sources** — ``ArrayWorkspace(...)`` objects, ``ws``/``workspace``
  names and attributes, array-slot reads off them (``ws.t_cycle``),
  slices/reshapes of those (views of views), ``_items``/``_buffer``
  internals, and calls to functions summarized as view-returning;
* **escapes** (findings) — returning a tainted value (bare or inside a
  tuple/list/dict display), storing one into an attribute or container
  (``self.x = view``, ``d[k] = view``, ``frontier.append(view)``), and
  passing one to ``FrontierState(...)`` — the frontier is reused across
  epochs and its masked-argmin fast path is only exact over rows the
  workspace can no longer overwrite;
* **cleansers** — ``.copy()`` / ``.tolist()`` / reductions
  (``.min()``, ``.sum()``, ``np.stack``...), ``tuple()``/``list()``/
  scalar constructors, and arithmetic (a binary op allocates a fresh
  array).  ``np.asarray`` is *not* a cleanser: it returns its argument
  unchanged for ndarray input.

Intentional borrows (the documented ``score_block`` contract, ring-buffer
iteration) carry ``# repro: noqa[workspace-escape]`` suppressions with a
justifying comment — the rule makes the contract visible, not illegal.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.analysis.callgraph import CallGraph, project_callgraph
from repro.analysis.cfg import FunctionNode, build_cfg
from repro.analysis.dataflow import Env, FlowAnalysis, own_exprs, solve
from repro.analysis.engine import Finding, ParsedModule, Project, Rule, register

__all__ = ["WorkspaceEscapeRule", "WS_ARRAY_SLOTS"]

Taint = FrozenSet[str]

#: A workspace object itself (owning it is fine; its buffers are not).
WSOBJ: Taint = frozenset({"wsobj"})
#: A borrowed view of workspace storage.
VIEW: Taint = frozenset({"view"})
#: A live internal buffer (ring-buffer deque, span buffer).
BUF: Taint = frozenset({"buf"})
CLEAN: Taint = frozenset()

#: The ndarray slots of ``ArrayWorkspace`` — reading one of these off a
#: workspace object yields a borrowed view.  Kept in sync with
#: ``ArrayWorkspace.__slots__`` by ``tests/analysis/test_flow_rules.py``.
WS_ARRAY_SLOTS = frozenset(
    {
        "counts",
        "active",
        "inactive",
        "totals",
        "pattern",
        "iwork",
        "nact",
        "speed_sums",
        "t_comp",
        "t_comm",
        "t_overlap",
        "t_cycle",
        "fwork",
        "fwork2",
        "mask",
        "bwork",
    }
)

_WS_NAMES = frozenset({"ws", "workspace", "_workspace"})
_BUF_ATTRS = frozenset({"_items", "_buffer"})

#: Method calls that keep pointing at the same storage.
_VIEW_PRESERVING_METHODS = frozenset(
    {"reshape", "ravel", "view", "transpose", "squeeze"}
)
#: Method calls that allocate (copies, reductions, scalars, snapshots).
_CLEANSING_METHODS = frozenset(
    {
        "copy",
        "tolist",
        "item",
        "astype",
        "min",
        "max",
        "sum",
        "mean",
        "std",
        "any",
        "all",
        "argmin",
        "argmax",
        "snapshot",
        "nbytes",
    }
)
_CLEANSING_CALLS = frozenset(
    {"tuple", "list", "dict", "set", "sorted", "float", "int", "bool", "str", "len"}
)
#: Containers storing a view escape it (the container outlives the block).
_STORING_METHODS = frozenset({"append", "extend", "insert", "add", "put", "setdefault"})


class _AliasFlow(FlowAnalysis[Taint]):
    """Borrow propagation for one function; reports when ``findings`` set."""

    def __init__(
        self,
        module: ParsedModule,
        func: FunctionNode,
        summaries: Dict[Tuple[str, str], Taint],
        graph: CallGraph,
        class_name: Optional[str],
    ) -> None:
        self.module = module
        self.func = func
        self.summaries = summaries
        self.graph = graph
        self.class_name = class_name
        self.findings: Optional[List[Finding]] = None
        self.returned: Taint = CLEAN

    def initial_env(self) -> Env[Taint]:
        env: Env[Taint] = {}
        args = self.func.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg in _WS_NAMES:
                env[arg.arg] = WSOBJ
        return env

    def join_values(self, a: Optional[Taint], b: Optional[Taint]) -> Optional[Taint]:
        if a is None:
            return b
        if b is None:
            return a
        return a | b

    # -- reporting -----------------------------------------------------------

    def _report(self, node: ast.AST, message: str) -> None:
        if self.findings is None:
            return
        finding = Finding(
            path=self.module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=WorkspaceEscapeRule.name,
            message=message,
        )
        if finding not in self.findings:
            self.findings.append(finding)

    @staticmethod
    def _what(taint: Taint) -> str:
        if "buf" in taint:
            return "the live internal buffer"
        return "a borrowed workspace view"

    # -- transfer ------------------------------------------------------------

    def transfer(self, stmt: ast.AST, env: Env[Taint]) -> Env[Taint]:
        out = dict(env)
        if isinstance(stmt, ast.Assign):
            value = self._infer(stmt.value, out)
            for target in stmt.targets:
                self._assign(target, value, out)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._infer(stmt.value, out), out)
        elif isinstance(stmt, ast.AugAssign):
            # In-place arithmetic on a view mutates scratch in place — the
            # workspace's purpose — never an escape.
            self._infer(stmt.value, out)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._infer(stmt.value, out)
                escaping = value & (VIEW | BUF)
                if escaping:
                    self.returned = self.returned | escaping
                    self._report(
                        stmt,
                        f"returns {self._what(escaping)}: callers outlive the "
                        f"next workspace overwrite — return a .copy() (or keep "
                        f"the borrow and suppress with a documented contract)",
                    )
        else:
            for expr in own_exprs(stmt):
                self._infer(expr, out)
        return out

    def _assign(self, target: ast.expr, value: Taint, env: Env[Taint]) -> None:
        escaping = value & (VIEW | BUF)
        if isinstance(target, ast.Name):
            env[target.id] = WSOBJ if target.id in _WS_NAMES else value
            return
        if isinstance(target, ast.Attribute):
            base_taint = self._infer(target.value, env)
            if target.attr in _WS_NAMES or "wsobj" in value:
                return  # storing the workspace object itself = ownership
            if escaping and "wsobj" not in base_taint:
                self._report(
                    target,
                    f"stores {self._what(escaping)} in attribute "
                    f"{target.attr!r}: the structure outlives the next "
                    f"workspace overwrite — store a .copy()",
                )
            return
        if isinstance(target, ast.Subscript):
            base_taint = self._infer(target.value, env)
            # Writing INTO workspace storage is mutation, not escape.
            if escaping and not (base_taint & (VIEW | WSOBJ)):
                self._report(
                    target,
                    f"stores {self._what(escaping)} in a container: the "
                    f"container outlives the next workspace overwrite — "
                    f"store a .copy()",
                )
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, value, env)

    # -- expression inference ------------------------------------------------

    def _infer(self, node: ast.expr, env: Env[Taint]) -> Taint:
        if isinstance(node, ast.Name):
            if node.id in _WS_NAMES:
                return WSOBJ
            return env.get(node.id, CLEAN)
        if isinstance(node, ast.Attribute):
            base = self._infer(node.value, env)
            if node.attr in _WS_NAMES:
                return WSOBJ
            if node.attr in _BUF_ATTRS:
                return BUF
            if "wsobj" in base and node.attr in WS_ARRAY_SLOTS:
                return VIEW
            if node.attr == "T" and ("view" in base or "buf" in base):
                return base
            return CLEAN
        if isinstance(node, ast.Subscript):
            base = self._infer(node.value, env)
            self._infer(node.slice, env)
            if base & (VIEW | BUF):
                return base & (VIEW | BUF)
            return CLEAN
        if isinstance(node, ast.Call):
            return self._infer_call(node, env)
        if isinstance(node, ast.Starred):
            return self._infer(node.value, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Dict)):
            # A display *containing* a borrow is as escaped as the borrow.
            out = CLEAN
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    out = out | (self._infer(child, env) & (VIEW | BUF))
            return out
        if isinstance(node, ast.IfExp):
            self._infer(node.test, env)
            return self._infer(node.body, env) | self._infer(node.orelse, env)
        if isinstance(node, ast.NamedExpr):
            value = self._infer(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = value
            return value
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._infer(child, env)
        # Arithmetic, comparisons, f-strings... allocate fresh values.
        return CLEAN

    def _infer_call(self, node: ast.Call, env: Env[Taint]) -> Taint:
        func = node.func
        arg_taints = [self._infer(arg, env) for arg in node.args]
        kw_taints = [self._infer(kw.value, env) for kw in node.keywords]

        if isinstance(func, ast.Name):
            if func.id == "ArrayWorkspace":
                return WSOBJ
            if func.id == "FrontierState":
                for child, taint in zip(
                    list(node.args) + [kw.value for kw in node.keywords],
                    arg_taints + kw_taints,
                ):
                    if taint & VIEW:
                        self._report(
                            child,
                            "a borrowed workspace view passed to "
                            "FrontierState(): the frontier is reused across "
                            "epochs and its masked-argmin fast path is only "
                            "exact over rows the workspace cannot overwrite "
                            "— pass a .copy()",
                        )
                return CLEAN
            if func.id in _CLEANSING_CALLS:
                return CLEAN
            if func.id == "iter":
                out = CLEAN
                for taint in arg_taints:
                    out = out | (taint & (VIEW | BUF))
                return out
        if isinstance(func, ast.Attribute):
            base = self._infer(func.value, env)
            base_name = func.value.id if isinstance(func.value, ast.Name) else ""
            if base_name in ("np", "numpy"):
                if func.attr == "asarray":
                    out = CLEAN
                    for taint in arg_taints:
                        out = out | (taint & (VIEW | BUF))
                    return out
                return CLEAN  # np.stack/np.array/np.take... allocate
            if func.attr in _STORING_METHODS:
                for child, taint in zip(node.args, arg_taints):
                    escaping = taint & (VIEW | BUF)
                    if escaping and not (base & (VIEW | WSOBJ | BUF)):
                        self._report(
                            child,
                            f"{func.attr}() stores {self._what(escaping)} in a "
                            f"container that outlives the next workspace "
                            f"overwrite — store a .copy()",
                        )
                return CLEAN
            if func.attr in _VIEW_PRESERVING_METHODS and base & (VIEW | BUF):
                return base & (VIEW | BUF)
            if func.attr in _CLEANSING_METHODS:
                return CLEAN
            if "wsobj" in base or base & (VIEW | BUF):
                return CLEAN  # other methods on scratch produce fresh values
        target = self.graph.resolve(self.module, node, enclosing_class=self.class_name)
        if target is not None:
            return self.summaries.get(target.key, CLEAN)
        return CLEAN


def _walk_functions(
    module: ParsedModule,
) -> Iterator[Tuple[FunctionNode, Optional[str]]]:
    stack: List[Tuple[ast.AST, Optional[str]]] = [(module.tree, None)]
    while stack:
        node, class_name = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, class_name
                stack.append((child, class_name))
            elif isinstance(child, ast.ClassDef):
                stack.append((child, child.name))
            else:
                stack.append((child, class_name))


def _run_function(
    module: ParsedModule,
    func: FunctionNode,
    summaries: Dict[Tuple[str, str], Taint],
    graph: CallGraph,
    class_name: Optional[str],
    findings: Optional[List[Finding]],
) -> Taint:
    flow = _AliasFlow(module, func, summaries, graph, class_name)
    cfg = build_cfg(func)
    entry_envs = solve(cfg, flow)
    flow.findings = findings
    flow.returned = CLEAN
    for block_id in cfg.rpo():
        env = dict(entry_envs.get(block_id, {}))
        for stmt in cfg.blocks[block_id].stmts:
            env = flow.transfer(stmt, env)
    return flow.returned


@register
class WorkspaceEscapeRule(Rule):
    """Borrowed scratch (workspace views, ring-buffer internals) must not
    escape into longer-lived structures without an explicit copy."""

    name = "workspace-escape"
    description = (
        "Tracks borrowed views of reusable scratch (ArrayWorkspace "
        "buffers, ring-buffer internals) through assignments and call "
        "summaries; flags returns, attribute/container stores, and "
        "FrontierState arguments that let a view outlive the next "
        "workspace overwrite without a .copy()."
    )
    scope = "project"

    MAX_ROUNDS = 8

    def check(self, project: Project) -> Iterator[Finding]:
        graph = project_callgraph(project)
        summaries: Dict[Tuple[str, str], Taint] = {}
        for _ in range(self.MAX_ROUNDS):
            changed = False
            for info in graph.functions:
                returned = _run_function(
                    info.module, info.node, summaries, graph, info.class_name, None
                )
                if summaries.get(info.key, CLEAN) != returned:
                    summaries[info.key] = returned
                    changed = True
            if not changed:
                break
        findings: List[Finding] = []
        for module in project.modules:
            for func, class_name in _walk_functions(module):
                _run_function(module, func, summaries, graph, class_name, findings)
        yield from sorted(findings)
