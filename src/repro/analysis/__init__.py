"""``repro.analysis`` — the ``repro lint`` static-analysis subsystem.

An AST-based linter purpose-built for this reproduction (see
docs/static-analysis.md): a rule registry, per-line ``# repro:
noqa[rule-name]`` suppressions, text/JSON/SARIF reporters, content-hash
incremental caching, and eight paper-grounded rules:

``unit-consistency``
    dimensional analysis over the :mod:`repro.units` naming conventions —
    the shape of the paper's printed Eq 3 erratum;
``callback-purity``
    :mod:`repro.model.phases` annotation callbacks must be pure and
    deterministic (the partitioner re-evaluates them; replay recovery
    assumes bit-exact re-execution);
``sim-determinism``
    entropy must flow through the ``sim/rng.py`` named streams and time
    through the injectable clock in simulation-critical code;
``engine-parity``
    numeric constants must not be duplicated between the scalar estimator
    and the batch fastpath engines;
``telemetry-determinism``
    sim-critical code must record sim-domain (deterministic, clock-domain
    verified) telemetry; host-domain instruments there need an explicit
    suppression explaining why;
``clock-domain``
    flow-sensitive taint over each function's CFG, interprocedural via
    call summaries: sim-clock values (ManualClock, ``*_sim_ms``) and
    host-clock values (``time.perf_counter``, ``*_host_ms``/``wall_*``)
    must never be added, subtracted, or compared;
``unit-flow``
    extends ``unit-consistency`` across call boundaries — parameter and
    return units flow through the module-granular call graph
    (:mod:`repro.analysis.callgraph`) as function summaries;
``workspace-escape``
    borrowed scratch (``ArrayWorkspace`` buffer views, ring-buffer
    internals) must not escape into returned or longer-lived structures
    without an explicit copy.

The last three share a whole-program dataflow layer: per-function CFGs
(:mod:`repro.analysis.cfg`), a generic forward-dataflow solver
(:mod:`repro.analysis.dataflow`), and a memoized project call graph.

Importing this package registers the built-in rules.
"""

from __future__ import annotations

from repro.analysis.aliascheck import WorkspaceEscapeRule
from repro.analysis.callgraph import CallGraph, build_callgraph, project_callgraph
from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.clockcheck import ClockDomainRule
from repro.analysis.dataflow import FlowAnalysis, own_exprs, solve
from repro.analysis.determinism import SimDeterminismRule
from repro.analysis.engine import (
    Finding,
    LintError,
    ParsedModule,
    Project,
    Rule,
    analyze_paths,
    collect_python_files,
    register,
    registered_rules,
    rule_names,
)
from repro.analysis.parity import EngineParityRule
from repro.analysis.purity import CallbackPurityRule
from repro.analysis.reporters import (
    REPORTERS,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.telemetrycheck import TelemetryDeterminismRule
from repro.analysis.unitcheck import UnitConsistencyRule, format_unit, name_unit
from repro.analysis.unitflow import UnitFlowRule

__all__ = [
    "Finding",
    "LintError",
    "ParsedModule",
    "Project",
    "Rule",
    "register",
    "registered_rules",
    "rule_names",
    "analyze_paths",
    "collect_python_files",
    "REPORTERS",
    "render_text",
    "render_json",
    "render_sarif",
    "BasicBlock",
    "CFG",
    "build_cfg",
    "FlowAnalysis",
    "own_exprs",
    "solve",
    "CallGraph",
    "build_callgraph",
    "project_callgraph",
    "UnitConsistencyRule",
    "CallbackPurityRule",
    "SimDeterminismRule",
    "EngineParityRule",
    "TelemetryDeterminismRule",
    "ClockDomainRule",
    "UnitFlowRule",
    "WorkspaceEscapeRule",
    "format_unit",
    "name_unit",
]
