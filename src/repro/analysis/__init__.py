"""``repro.analysis`` — the ``repro lint`` static-analysis subsystem.

An AST-based linter purpose-built for this reproduction (see
docs/static-analysis.md): a rule registry, per-line ``# repro:
noqa[rule-name]`` suppressions, text/JSON/SARIF reporters, and five
paper-grounded rules:

``unit-consistency``
    dimensional analysis over the :mod:`repro.units` naming conventions —
    the shape of the paper's printed Eq 3 erratum;
``callback-purity``
    :mod:`repro.model.phases` annotation callbacks must be pure and
    deterministic (the partitioner re-evaluates them; replay recovery
    assumes bit-exact re-execution);
``sim-determinism``
    entropy must flow through the ``sim/rng.py`` named streams and time
    through the injectable clock in simulation-critical code;
``engine-parity``
    numeric constants must not be duplicated between the scalar estimator
    and the batch fastpath engines;
``telemetry-determinism``
    sim-critical code must record sim-domain (deterministic, clock-domain
    verified) telemetry; host-domain instruments there need an explicit
    suppression explaining why.

Importing this package registers the built-in rules.
"""

from __future__ import annotations

from repro.analysis.determinism import SimDeterminismRule
from repro.analysis.engine import (
    Finding,
    LintError,
    ParsedModule,
    Project,
    Rule,
    analyze_paths,
    collect_python_files,
    register,
    registered_rules,
    rule_names,
)
from repro.analysis.parity import EngineParityRule
from repro.analysis.purity import CallbackPurityRule
from repro.analysis.reporters import (
    REPORTERS,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.telemetrycheck import TelemetryDeterminismRule
from repro.analysis.unitcheck import UnitConsistencyRule, format_unit, name_unit

__all__ = [
    "Finding",
    "LintError",
    "ParsedModule",
    "Project",
    "Rule",
    "register",
    "registered_rules",
    "rule_names",
    "analyze_paths",
    "collect_python_files",
    "REPORTERS",
    "render_text",
    "render_json",
    "render_sarif",
    "UnitConsistencyRule",
    "CallbackPurityRule",
    "SimDeterminismRule",
    "EngineParityRule",
    "TelemetryDeterminismRule",
    "format_unit",
    "name_unit",
]
