"""Rule ``callback-purity``: annotation callbacks must be pure.

The partitioner re-evaluates the :mod:`repro.model.phases` annotation
callbacks (``complexity``, ``per_cycle_complexity``,
``per_config_complexity``, ``rounds``, ``num_pdus``) many times during the
§5 configuration search, and the fault-tolerant runtime's replay recovery
assumes *bit-exact* re-execution of every annotation-driven decision.  A
callback that reads the wall clock, draws unseeded randomness, performs
I/O, or mutates enclosing state therefore breaks both the search (the
objective shifts under the optimizer) and replay parity (the recovered
answer diverges from the failure-free run).

This rule finds every call that constructs a phase or computation
(``ComputationPhase``, ``CommunicationPhase``, ``DataParallelComputation``),
resolves lambda and same-module ``def`` arguments bound to annotation
parameters, and flags impure constructs in their bodies:

* I/O calls (``print``, ``open``, ``input``) and I/O-bearing modules
  (``os``, ``sys``, ``socket``, ``subprocess``, ``pathlib`` writes);
* wall-clock reads (``time.*``, ``datetime.*``);
* ``random`` / ``numpy.random`` draws (even seeded draws advance shared
  generator state across re-evaluations — derive values, don't sample);
* ``global`` / ``nonlocal`` declarations (mutation of enclosing state).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.analysis.engine import Finding, ParsedModule, Project, Rule, register

__all__ = ["CallbackPurityRule", "ANNOTATION_CONSTRUCTORS", "ANNOTATION_PARAMS"]

#: Constructors whose arguments carry annotation callbacks, and the
#: positional index of each callback-capable parameter.
ANNOTATION_CONSTRUCTORS: Dict[str, Dict[str, int]] = {
    "ComputationPhase": {
        "complexity": 1,
        "per_cycle_complexity": 3,
    },
    "CommunicationPhase": {
        "complexity": 2,
        "per_cycle_complexity": 4,
        "per_config_complexity": 5,
        "rounds": 6,
    },
    "DataParallelComputation": {
        "num_pdus": 1,
    },
}

#: All annotation parameter names, for diagnostics.
ANNOTATION_PARAMS = sorted(
    {name for params in ANNOTATION_CONSTRUCTORS.values() for name in params}
)

_IO_BUILTINS = frozenset({"print", "open", "input", "exec", "eval"})
_FORBIDDEN_MODULES = {
    "time": "reads the wall clock",
    "datetime": "reads the wall clock",
    "random": "draws from shared random state",
    "os": "performs I/O",
    "sys": "performs I/O",
    "socket": "performs I/O",
    "subprocess": "performs I/O",
    "shutil": "performs I/O",
}


def _root_name(node: ast.expr) -> Optional[str]:
    """The leftmost name of a dotted expression (``np.random.rand`` -> np)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted rendering of an attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


Callback = Union[ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef]


class _ImpurityScan(ast.NodeVisitor):
    """Collects (node, reason) impurities inside one callback body."""

    def __init__(self) -> None:
        self.impurities: List[Tuple[ast.AST, str]] = []

    def visit_Global(self, node: ast.Global) -> None:
        names = ", ".join(node.names)
        self.impurities.append((node, f"declares global state ({names}) mutable"))

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        names = ", ".join(node.names)
        self.impurities.append((node, f"declares enclosing state ({names}) mutable"))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _IO_BUILTINS:
            self.impurities.append((node, f"calls {func.id}()"))
        elif isinstance(func, ast.Attribute):
            root = _root_name(func)
            dotted = _dotted(func)
            if root in _FORBIDDEN_MODULES:
                self.impurities.append(
                    (node, f"calls {dotted}() which {_FORBIDDEN_MODULES[root]}")
                )
            elif "random" in dotted.split("."):
                # numpy.random.* / np.random.* / <rng>.random(): shared or
                # re-evaluation-variant entropy either way.
                self.impurities.append(
                    (node, f"calls {dotted}() which draws random state")
                )
        self.generic_visit(node)


def _resolve_callback(
    arg: ast.expr, local_defs: Dict[str, Callback]
) -> Optional[Callback]:
    if isinstance(arg, ast.Lambda):
        return arg
    if isinstance(arg, ast.Name) and arg.id in local_defs:
        return local_defs[arg.id]
    return None


def _collect_defs(tree: ast.Module) -> Dict[str, Callback]:
    """Every ``def`` in the module, at any nesting depth, by name."""
    defs: Dict[str, Callback] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.setdefault(node.name, node)
    return defs


@register
class CallbackPurityRule(Rule):
    """Annotation callbacks must be pure, deterministic functions."""

    name = "callback-purity"
    description = (
        "Annotation callbacks registered via repro.model.phases must be "
        "pure and deterministic: the partitioner re-evaluates them during "
        "search, and replay-based fault recovery assumes bit-exact "
        "re-execution."
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            yield from self._check_module(module)

    def _check_module(self, module: ParsedModule) -> Iterator[Finding]:
        local_defs = _collect_defs(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            ctor = None
            if isinstance(func, ast.Name):
                ctor = func.id
            elif isinstance(func, ast.Attribute):
                ctor = func.attr
            params = ANNOTATION_CONSTRUCTORS.get(ctor or "")
            if params is None:
                continue
            for param, index in params.items():
                arg: Optional[ast.expr] = None
                if index < len(node.args):
                    arg = node.args[index]
                else:
                    for kw in node.keywords:
                        if kw.arg == param:
                            arg = kw.value
                            break
                if arg is None:
                    continue
                callback = _resolve_callback(arg, local_defs)
                if callback is None:
                    continue
                scan = _ImpurityScan()
                body = (
                    [callback.body]
                    if isinstance(callback, ast.Lambda)
                    else list(callback.body)
                )
                for stmt in body:
                    scan.visit(stmt)
                for impure_node, reason in scan.impurities:
                    yield Finding(
                        path=module.relpath,
                        line=getattr(impure_node, "lineno", node.lineno),
                        col=getattr(impure_node, "col_offset", 0) + 1,
                        rule=self.name,
                        message=(
                            f"impure annotation callback for {ctor}."
                            f"{param}: {reason}; the partitioner re-evaluates "
                            f"callbacks during search and replay recovery "
                            f"requires deterministic re-execution"
                        ),
                    )
