"""Rule ``engine-parity``: the cost-model engines must share constants.

The Eq 1–6 cost model exists three times: the scalar reference
implementation (``partition/estimator.py``), the vectorized batch engine
(``partition/fastpath.py``), and the preallocated array engine
(``partition/arrayengine.py``).  PR 2's tie-breaking bug was exactly the drift
mode this invites — one engine's decision logic evolved while the other's
copy did not.  Logic drift needs the equivalence test-suite; *constant*
drift is statically checkable: any numeric literal that appears in both
engines (instead of being imported from a single shared source such as
:mod:`repro.units`) is a fork waiting to diverge, as is a module-level
constant re-defined under the same name in both files.

The rule analyzes each configured engine pair when both files are present
in the run, collecting:

* numeric literals (ints with ``|v| > 2``, non-trivial floats) appearing
  in both files — reported at every occurrence in both engines;
* module-level ``NAME = <number>`` constants defined in both files under
  the same name.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from repro.analysis.engine import Finding, ParsedModule, Project, Rule, register

__all__ = ["EngineParityRule", "ENGINE_PAIRS"]

#: (reference implementation, alternate implementation) path suffixes.
#: The array engine pairs against both the scalar reference and the batch
#: engine it inherits its lowering from — a constant re-literaled in
#: ``arrayengine.py`` instead of imported drifts all three apart.
ENGINE_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("repro/partition/estimator.py", "repro/partition/fastpath.py"),
    ("repro/partition/estimator.py", "repro/partition/arrayengine.py"),
    ("repro/partition/fastpath.py", "repro/partition/arrayengine.py"),
)

#: Structurally trivial values that legitimately recur everywhere.
_TRIVIAL_INTS = frozenset({-2, -1, 0, 1, 2})
_TRIVIAL_FLOATS = frozenset({-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0})


def _literals(module: ParsedModule) -> Dict[float, List[ast.Constant]]:
    """Non-trivial numeric literals by value (ints and floats pooled)."""
    out: Dict[float, List[ast.Constant]] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Constant):
            continue
        value = node.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if isinstance(value, int) and value in _TRIVIAL_INTS:
            continue
        if isinstance(value, float) and value in _TRIVIAL_FLOATS:
            continue
        out.setdefault(float(value), []).append(node)
    return out


def _module_constants(module: ParsedModule) -> Dict[str, ast.Assign]:
    """Module-level ``NAME = <numeric literal>`` assignments by name."""
    out: Dict[str, ast.Assign] = {}
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if isinstance(stmt.value, ast.Constant) and isinstance(
            stmt.value.value, (int, float)
        ):
            out[target.id] = stmt
    return out


@register
class EngineParityRule(Rule):
    """Numeric constants duplicated across paired engine implementations."""

    name = "engine-parity"
    description = (
        "Flags numeric constants or coefficient expressions duplicated "
        "between the scalar estimator and the batch fastpath instead of "
        "imported from a single shared source — the drift mode behind the "
        "PR-2 tie-breaking bug."
    )
    # Findings depend on *pairs* of modules, not single files.
    scope = "project"

    def check(self, project: Project) -> Iterator[Finding]:
        for ref_suffix, alt_suffix in ENGINE_PAIRS:
            ref = project.find(ref_suffix)
            alt = project.find(alt_suffix)
            if ref is None or alt is None:
                continue
            yield from self._check_pair(ref, alt)

    def _check_pair(
        self, ref: ParsedModule, alt: ParsedModule
    ) -> Iterator[Finding]:
        ref_literals = _literals(ref)
        alt_literals = _literals(alt)
        for value in sorted(set(ref_literals) & set(alt_literals)):
            for module, nodes, other in (
                (ref, ref_literals[value], alt),
                (alt, alt_literals[value], ref),
            ):
                for node in nodes:
                    yield Finding(
                        path=module.relpath,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule=self.name,
                        message=(
                            f"numeric constant {node.value!r} is duplicated "
                            f"in the paired engine {other.relpath}; hoist it "
                            f"into a shared module (e.g. repro.units) so the "
                            f"scalar and batch engines cannot drift"
                        ),
                    )
        ref_consts = _module_constants(ref)
        alt_consts = _module_constants(alt)
        for name in sorted(set(ref_consts) & set(alt_consts)):
            for module, stmt, other in (
                (ref, ref_consts[name], alt),
                (alt, alt_consts[name], ref),
            ):
                yield Finding(
                    path=module.relpath,
                    line=stmt.lineno,
                    col=stmt.col_offset + 1,
                    rule=self.name,
                    message=(
                        f"module constant {name} is defined in both engine "
                        f"files (also in {other.relpath}); import it from a "
                        f"single shared source instead"
                    ),
                )
