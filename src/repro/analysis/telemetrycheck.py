"""Rule ``telemetry-determinism``: sim-critical code records sim-domain.

The telemetry subsystem (:mod:`repro.telemetry`) splits every instrument
into one of two clock domains.  **Sim-domain** metrics describe simulated
behaviour — messages sent, PDUs replayed, epochs triaged — and are part of
the reproducibility contract: a fixed seed must yield a byte-identical
sim-domain snapshot, and the fast-forward engine advances sim counters
*exactly* across skipped steady-state windows.  **Host-domain** metrics
describe execution mechanics — wall-clock timings, memo hit rates, cycles
probed vs fast-forwarded — and legitimately differ between two runs that
compute the same simulated result different ways.

A host-domain instrument created inside the simulation-critical paths is
therefore a red flag: either the author mislabelled simulated behaviour
(breaking the determinism guarantee silently — snapshots diverge between
engines while both runs "work"), or genuinely host-side bookkeeping has
leaked into the simulation core.  Both deserve a human decision, recorded
as a ``# repro: noqa[telemetry-determinism]`` suppression with the
rationale alongside (the fast-forward engine's probed/skipped counters are
the canonical example).

The rule scans ``sim/``, ``partition/runtime.py``, and the telemetry
package itself for:

* ``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)`` calls passing
  ``domain="host"``;
* ``SpanRecorder(...)`` constructions passing ``domain="host"``;
* any of the above passing a *non-literal* ``domain=`` — a domain the
  rule cannot verify statically is treated as unproven, not innocent.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.engine import Finding, ParsedModule, Project, Rule, register

__all__ = ["TelemetryDeterminismRule"]

#: Path fragments (posix) selecting the determinism-critical modules.
SCOPE_FRAGMENTS: Tuple[str, ...] = (
    "repro/sim/",
    "repro/partition/runtime.py",
    "repro/telemetry/",
)

#: Instrument-factory method names on a metrics registry.
_FACTORIES = frozenset({"counter", "gauge", "histogram"})


def _in_scope(relpath: str) -> bool:
    return any(fragment in relpath for fragment in SCOPE_FRAGMENTS)


def _domain_kwarg(node: ast.Call):
    for kw in node.keywords:
        if kw.arg == "domain":
            return kw
    return None


@register
class TelemetryDeterminismRule(Rule):
    """Host-domain instruments in sim-critical code need explicit sign-off."""

    name = "telemetry-determinism"
    description = (
        "In sim/, partition/runtime.py, and the telemetry package, flags "
        "metric/span instruments declared domain='host' (or with a domain "
        "that is not a string literal) — sim-critical code must record "
        "deterministic sim-domain telemetry unless a noqa records why not."
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if not _in_scope(module.relpath):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = self._instrument_kind(node.func)
            if kind is None:
                continue
            kw = _domain_kwarg(node)
            if kw is None:
                continue  # domain defaults to "sim"
            if isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, str):
                if kw.value.value == "host":
                    yield self._finding(
                        module,
                        node,
                        f"host-domain {kind} in simulation-critical code: "
                        f"sim-domain snapshots must be byte-reproducible and "
                        f"engine-independent; if this really measures "
                        f"execution mechanics, suppress with "
                        f"'# repro: noqa[{self.name}]' and say why",
                    )
            else:
                yield self._finding(
                    module,
                    node,
                    f"{kind} domain is not a string literal, so the clock-"
                    f"domain split cannot be verified statically; pass "
                    f"domain='sim' or domain='host' directly",
                )

    def _instrument_kind(self, func: ast.expr):
        """'counter'/'gauge'/'histogram', 'span recorder', or None."""
        if isinstance(func, ast.Attribute) and func.attr in _FACTORIES:
            return func.attr
        if isinstance(func, ast.Name) and func.id == "SpanRecorder":
            return "span recorder"
        if isinstance(func, ast.Attribute) and func.attr == "SpanRecorder":
            return "span recorder"
        return None

    def _finding(self, module: ParsedModule, node: ast.Call, message: str) -> Finding:
        return Finding(
            path=module.relpath,
            line=node.lineno,
            col=node.col_offset + 1,
            rule=self.name,
            message=message,
        )
