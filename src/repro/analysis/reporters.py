"""Finding reporters: text, JSON, and SARIF 2.1.0 output for ``repro lint``.

Text is the human default (``path:line:col: rule: message`` plus a
summary), JSON is the stable machine form (``{"version": 1, "findings":
[...]}``) and SARIF 2.1.0 lets CI systems and editors ingest the results
natively.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Callable, Dict, Sequence

from repro.analysis.engine import Finding, registered_rules

__all__ = ["render_text", "render_json", "render_sarif", "REPORTERS"]

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "repro-lint"


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a per-rule summary."""
    lines = [finding.render() for finding in findings]
    if not findings:
        lines.append("repro lint: no findings")
    else:
        counts = Counter(finding.rule for finding in findings)
        breakdown = ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
        lines.append("")
        lines.append(f"repro lint: {len(findings)} finding(s) ({breakdown})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Stable machine-readable form."""
    payload = {
        "version": 1,
        "tool": _TOOL_NAME,
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2)


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 with the registered rule catalogue embedded.

    Every ``ruleId`` appearing in ``results`` must cross-reference an
    entry in the driver's ``rules`` array, including pseudo-rules that
    exist only as findings (``syntax-error``) — consumers resolve the
    ``ruleIndex``-less reference by id.
    """
    catalogue = {
        name: rule_cls.description
        for name, rule_cls in registered_rules().items()
    }
    for finding in findings:
        catalogue.setdefault(
            finding.rule, "pseudo-rule emitted by the engine itself"
        )
    rules = [
        {
            "id": name,
            "shortDescription": {"text": description},
        }
        for name, description in sorted(catalogue.items())
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {"startLine": f.line, "startColumn": f.col},
                    }
                }
            ],
        }
        for f in findings
    ]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)


#: Format name -> renderer, as exposed by ``repro lint --format``.
REPORTERS: Dict[str, Callable[[Sequence[Finding]], str]] = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
