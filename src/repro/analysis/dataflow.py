"""A generic forward dataflow solver over :mod:`repro.analysis.cfg` graphs.

The flow rules (clock-domain taint, workspace aliasing) are all instances
of the same scheme: an *environment* maps local names to abstract values,
statements *transfer* environments forward, and merge points *join* them.
This module provides the fixpoint machinery once; a client supplies the
value lattice:

* :meth:`FlowAnalysis.transfer` — the effect of one statement on an
  environment (compound statements contribute only their *own*
  expressions; see :func:`own_exprs`);
* :meth:`FlowAnalysis.join_values` — the lattice join of two abstract
  values (``None`` means "unbound / bottom").

:func:`solve` iterates block transfer functions in reverse postorder
until block-entry environments stop changing, with a hard iteration cap
so a client whose join is not monotone degrades to an over-wide result
instead of a hang.  The solved entry environments are what a reporting
pass replays statement-by-statement to anchor findings.
"""

from __future__ import annotations

import ast
from typing import Dict, Generic, Iterator, Optional, TypeVar

from repro.analysis.cfg import CFG

__all__ = ["Env", "FlowAnalysis", "solve", "own_exprs"]

V = TypeVar("V")

#: A block-entry abstract state: local name -> abstract value.
Env = Dict[str, V]


def own_exprs(stmt: ast.AST) -> Iterator[ast.expr]:
    """The expressions a statement evaluates *itself*, excluding nested
    statement bodies (those live in other CFG blocks) and nested
    function/class definitions (analyzed separately)."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return
    if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
        yield stmt.test
        return
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.iter
        return
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr
        return
    if isinstance(stmt, ast.ExceptHandler):
        if stmt.type is not None:
            yield stmt.type
        return
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            yield child


class FlowAnalysis(Generic[V]):
    """Client hooks for :func:`solve`.  Subclass and override."""

    def initial_env(self) -> Env[V]:
        """The environment at function entry (parameter seeds)."""
        return {}

    def transfer(self, stmt: ast.AST, env: Env[V]) -> Env[V]:
        """The environment after ``stmt``.  Must not mutate ``env``."""
        raise NotImplementedError

    def join_values(self, a: Optional[V], b: Optional[V]) -> Optional[V]:
        """Join two abstract values; ``None`` is bottom (unbound)."""
        raise NotImplementedError

    # -- provided ------------------------------------------------------------

    def join_envs(self, a: Env[V], b: Env[V]) -> Env[V]:
        out: Env[V] = {}
        for key in a.keys() | b.keys():
            joined = self.join_values(a.get(key), b.get(key))
            if joined is not None:
                out[key] = joined
        return out


def solve(cfg: CFG, analysis: FlowAnalysis[V]) -> Dict[int, Env[V]]:
    """Fixpoint block-entry environments, keyed by block id."""
    order = cfg.rpo()
    position = {block_id: index for index, block_id in enumerate(order)}
    entry_envs: Dict[int, Env[V]] = {cfg.entry: analysis.initial_env()}
    worklist = list(order)
    # Cap: every block re-queued at most ~4x per variable would already be
    # pathological for these finite lattices; 32x blocks is a safe ceiling.
    budget = max(256, 32 * len(cfg.blocks))
    while worklist and budget > 0:
        budget -= 1
        worklist.sort(key=lambda b: position.get(b, len(position)))
        block_id = worklist.pop(0)
        block = cfg.blocks.get(block_id)
        if block is None:
            continue
        env = dict(entry_envs.get(block_id, {}))
        for stmt in block.stmts:
            env = analysis.transfer(stmt, env)
        for succ in block.succs:
            if succ in entry_envs:
                merged = analysis.join_envs(entry_envs[succ], env)
                if merged != entry_envs[succ]:
                    entry_envs[succ] = merged
                    if succ not in worklist:
                        worklist.append(succ)
            else:
                entry_envs[succ] = dict(env)
                if succ not in worklist:
                    worklist.append(succ)
    return entry_envs
