"""A module-granular call graph over one analysis :class:`Project`.

The interprocedural rules (clock-domain taint, unit flow, workspace
escape) need one question answered cheaply: *which function definition
does this call site probably invoke?*  Precise Python call resolution is
undecidable; this resolver is deliberately name- and import-based, with
the standard cheap-whole-program compromises, and every rule built on it
treats "unresolved" as "no knowledge" (never as a finding):

* ``f(...)`` resolves to a same-module ``def f``, else through a
  ``from repro.x import f [as g]`` / ``import repro.x [as m]`` binding
  into another analyzed module;
* ``m.f(...)`` resolves through a module-alias import;
* ``self.f(...)`` / ``cls.f(...)`` resolves to a method of the enclosing
  class (passed in by the caller, which knows its lexical context);
* ``obj.meth(...)`` falls back to *unique-name* resolution: if exactly
  one method named ``meth`` is defined anywhere in the analyzed project,
  that is the target; two or more candidates mean "unresolved".

Known limits (documented in docs/static-analysis.md): dynamic dispatch
through non-unique method names, ``**kwargs`` forwarding, decorators that
change signatures, and callables stored in data structures all resolve to
nothing — summaries simply stop propagating there.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.engine import ParsedModule, Project

__all__ = ["FunctionInfo", "CallGraph", "build_callgraph", "project_callgraph"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FunctionInfo:
    """One analyzed function or method definition."""

    module: ParsedModule
    node: FunctionNode
    qualname: str  #: ``"func"`` or ``"Class.method"`` within the module.
    class_name: Optional[str]  #: Enclosing class, if a method.
    params: Tuple[str, ...]  #: Positional-or-keyword names, ``self``/``cls`` dropped.

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def key(self) -> Tuple[str, str]:
        """Project-unique id: (module relpath, qualname)."""
        return (self.module.relpath, self.qualname)


def _module_dotted(relpath: str) -> str:
    """``src/repro/sim/rng.py`` -> ``repro.sim.rng`` (best effort)."""
    path = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = path.split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro") :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _params(node: FunctionNode, *, is_method: bool) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if is_method and names and names[0] in ("self", "cls"):
        names = names[1:]
    names.extend(a.arg for a in args.kwonlyargs)
    return tuple(names)


class CallGraph:
    """Function index + call-site resolver for one project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.functions: List[FunctionInfo] = []
        #: (module relpath, plain name) -> top-level function.
        self._module_level: Dict[Tuple[str, str], FunctionInfo] = {}
        #: (module relpath, class, method) -> method.
        self._methods: Dict[Tuple[str, str, str], FunctionInfo] = {}
        #: method name -> every definition, for unique-name fallback.
        self._by_method_name: Dict[str, List[FunctionInfo]] = {}
        #: dotted module name -> module.
        self._by_dotted: Dict[str, ParsedModule] = {}
        #: module relpath -> local name -> (dotted module, original name).
        self._from_imports: Dict[str, Dict[str, Tuple[str, str]]] = {}
        #: module relpath -> local alias -> dotted module.
        self._module_aliases: Dict[str, Dict[str, str]] = {}
        for module in project.modules:
            self._index_module(module)

    # -- indexing ------------------------------------------------------------

    def _index_module(self, module: ParsedModule) -> None:
        self._by_dotted[_module_dotted(module.relpath)] = module
        from_imports: Dict[str, Tuple[str, str]] = {}
        aliases: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    from_imports[local] = (node.module, alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    aliases[local] = alias.name if alias.asname else alias.name.split(".")[0]
                    if alias.asname:
                        aliases[alias.asname] = alias.name
        self._from_imports[module.relpath] = from_imports
        self._module_aliases[module.relpath] = aliases
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    module=module,
                    node=stmt,
                    qualname=stmt.name,
                    class_name=None,
                    params=_params(stmt, is_method=False),
                )
                self.functions.append(info)
                self._module_level[(module.relpath, stmt.name)] = info
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        continue
                    decorators = {
                        d.id
                        for d in item.decorator_list
                        if isinstance(d, ast.Name)
                    }
                    is_method = not ({"staticmethod"} & decorators)
                    info = FunctionInfo(
                        module=module,
                        node=item,
                        qualname=f"{stmt.name}.{item.name}",
                        class_name=stmt.name,
                        params=_params(item, is_method=is_method),
                    )
                    self.functions.append(info)
                    self._methods[(module.relpath, stmt.name, item.name)] = info
                    self._by_method_name.setdefault(item.name, []).append(info)

    # -- resolution ----------------------------------------------------------

    def resolve(
        self,
        module: ParsedModule,
        call: ast.Call,
        *,
        enclosing_class: Optional[str] = None,
    ) -> Optional[FunctionInfo]:
        """The unique probable target of ``call``, or ``None``."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(module, func.id)
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls") and enclosing_class is not None:
                    hit = self._methods.get(
                        (module.relpath, enclosing_class, func.attr)
                    )
                    if hit is not None:
                        return hit
                    return self._resolve_unique_method(func.attr)
                dotted = self._module_aliases.get(module.relpath, {}).get(base.id)
                if dotted is not None:
                    target = self._by_dotted.get(dotted)
                    if target is not None:
                        return self._module_level.get((target.relpath, func.attr))
                    return None
            return self._resolve_unique_method(func.attr)
        return None

    def _resolve_name(self, module: ParsedModule, name: str) -> Optional[FunctionInfo]:
        local = self._module_level.get((module.relpath, name))
        if local is not None:
            return local
        binding = self._from_imports.get(module.relpath, {}).get(name)
        if binding is None:
            return None
        dotted, original = binding
        target = self._by_dotted.get(dotted)
        if target is None:
            return None
        return self._module_level.get((target.relpath, original))

    def _resolve_unique_method(self, name: str) -> Optional[FunctionInfo]:
        candidates = self._by_method_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None


def build_callgraph(project: Project) -> CallGraph:
    """Index ``project`` into a fresh :class:`CallGraph`."""
    return CallGraph(project)


def project_callgraph(project: Project) -> CallGraph:
    """The project's call graph, built once and memoized on the project.

    Three interprocedural rules run per lint invocation; sharing the index
    keeps the whole-program pass linear in project size.
    """
    cached = getattr(project, "_callgraph", None)
    if isinstance(cached, CallGraph) and cached.project is project:
        return cached
    graph = CallGraph(project)
    project._callgraph = graph  # type: ignore[attr-defined]
    return graph
