"""The ``repro lint`` static-analysis engine (see docs/static-analysis.md).

A small, dependency-free AST linter purpose-built for this repository: the
paper's printed Eq 3 is dimensionally wrong (the DESIGN.md erratum), the
cost model exists twice (scalar ``partition/estimator.py`` and batch
``partition/fastpath.py``), and the partitioner re-evaluates annotation
callbacks during search and replay — three bug classes a generic linter
cannot see.  The engine parses every target file once into a
:class:`ParsedModule`, hands the whole :class:`Project` to each registered
:class:`Rule`, and filters the resulting :class:`Finding` stream through
per-line ``# repro: noqa[rule-name]`` suppressions and ``--select`` /
``--ignore`` sets.

Rules register themselves via :func:`register`; importing
:mod:`repro.analysis` loads the built-in four (unit-consistency,
callback-purity, sim-determinism, engine-parity).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

__all__ = [
    "Finding",
    "ParsedModule",
    "Project",
    "Rule",
    "register",
    "registered_rules",
    "rule_names",
    "analyze_paths",
    "collect_python_files",
    "LintError",
]

#: Pseudo-rule for files the parser rejects; always reported, never selectable.
SYNTAX_RULE = "syntax-error"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[(?P<rules>[A-Za-z0-9_,\- ]+)\])?", re.IGNORECASE
)


class LintError(Exception):
    """An invalid analysis request (unknown rule name, unreadable path)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule violation anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The conventional ``path:line:col: rule: message`` text form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass
class ParsedModule:
    """One successfully parsed source file and its suppression table."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    #: line number -> rule names suppressed there ("*" suppresses all rules).
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def suppressed(self, line: int, rule: str) -> bool:
        rules = self.suppressions.get(line)
        if not rules:
            return False
        return "*" in rules or rule in rules


@dataclass
class Project:
    """Every parsed module of one analysis run, keyed by relative path."""

    modules: List[ParsedModule]

    def find(self, suffix: str) -> Optional[ParsedModule]:
        """The module whose relative path ends with ``suffix`` (posix)."""
        for module in self.modules:
            if module.relpath == suffix or module.relpath.endswith("/" + suffix):
                return module
        return None


class Rule:
    """Base class for analysis rules.

    Subclasses set ``name`` (the selectable, suppressible identifier) and
    ``description``, then implement :meth:`check`, yielding findings for the
    whole project — per-file rules simply iterate ``project.modules``.
    """

    name: str = ""
    description: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``rule_cls`` to the global rule registry."""
    if not rule_cls.name:
        raise ValueError(f"rule {rule_cls.__name__} has no name")
    if rule_cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule_cls.name!r}")
    _REGISTRY[rule_cls.name] = rule_cls
    return rule_cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """A copy of the rule registry (name -> class)."""
    return dict(_REGISTRY)


def rule_names() -> List[str]:
    """All registered rule names, sorted."""
    return sorted(_REGISTRY)


def _parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Per-line ``# repro: noqa[...]`` directives, via the token stream.

    Tokenizing (rather than regexing raw lines) keeps directives inside
    string literals from suppressing anything.
    """
    table: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if match is None:
                continue
            listed = match.group("rules")
            if listed is None:
                names = {"*"}
            else:
                names = {part.strip() for part in listed.split(",") if part.strip()}
            table.setdefault(tok.start[0], set()).update(names)
    except tokenize.TokenError:
        pass
    return table


def collect_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list."""
    seen: Set[Path] = set()
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise LintError(f"no such file or directory: {path}")
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def _relpath(path: Path) -> str:
    """``path`` relative to the current directory when possible, posix-style."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return resolved.as_posix()


def load_project(files: Sequence[Path]) -> tuple[Project, List[Finding]]:
    """Parse ``files``; unparseable ones become ``syntax-error`` findings."""
    modules: List[ParsedModule] = []
    errors: List[Finding] = []
    for path in files:
        relpath = _relpath(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            errors.append(Finding(relpath, 1, 1, SYNTAX_RULE, str(exc)))
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    relpath,
                    exc.lineno or 1,
                    (exc.offset or 1),
                    SYNTAX_RULE,
                    f"cannot parse: {exc.msg}",
                )
            )
            continue
        modules.append(
            ParsedModule(
                path=path,
                relpath=relpath,
                source=source,
                tree=tree,
                suppressions=_parse_suppressions(source),
            )
        )
    return Project(modules=modules), errors


def _resolve_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> List[Rule]:
    available = registered_rules()
    chosen = list(select) if select else sorted(available)
    for name in list(chosen) + list(ignore or []):
        if name not in available:
            raise LintError(
                f"unknown rule {name!r} (available: {', '.join(sorted(available))})"
            )
    ignored = set(ignore or [])
    return [available[name]() for name in chosen if name not in ignored]


def analyze_paths(
    paths: Sequence[Path],
    *,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the (selected) rules over ``paths``; the public engine entry.

    Returns findings sorted by location.  Suppressed findings are dropped;
    ``syntax-error`` findings are always included — an unparseable file can
    never be certified clean.
    """
    rules = _resolve_rules(select, ignore)
    files = collect_python_files([Path(p) for p in paths])
    project, findings = load_project(files)
    by_path = {module.relpath: module for module in project.modules}
    for rule in rules:
        for finding in rule.check(project):
            module = by_path.get(finding.path)
            if module is not None and module.suppressed(finding.line, finding.rule):
                continue
            findings.append(finding)
    return sorted(findings)
