"""The ``repro lint`` static-analysis engine (see docs/static-analysis.md).

A small, dependency-free AST linter purpose-built for this repository: the
paper's printed Eq 3 is dimensionally wrong (the DESIGN.md erratum), the
cost model exists twice (scalar ``partition/estimator.py`` and batch
``partition/fastpath.py``), and the partitioner re-evaluates annotation
callbacks during search and replay — three bug classes a generic linter
cannot see.  The engine parses every target file once into a
:class:`ParsedModule`, hands the whole :class:`Project` to each registered
:class:`Rule`, and filters the resulting :class:`Finding` stream through
per-line ``# repro: noqa[rule-name]`` suppressions and ``--select`` /
``--ignore`` sets.

Rules register themselves via :func:`register`; importing
:mod:`repro.analysis` loads the built-in four (unit-consistency,
callback-purity, sim-determinism, engine-parity).
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

__all__ = [
    "Finding",
    "ParsedModule",
    "Project",
    "Rule",
    "register",
    "registered_rules",
    "rule_names",
    "analyze_paths",
    "collect_python_files",
    "LintError",
    "DEFAULT_CACHE_NAME",
]

#: Default on-disk location of the incremental result cache (see
#: :func:`analyze_paths`); ``repro lint --no-cache`` bypasses it.
DEFAULT_CACHE_NAME = ".repro-lint-cache.json"

_CACHE_VERSION = 1

#: Pseudo-rule for files the parser rejects; always reported, never selectable.
SYNTAX_RULE = "syntax-error"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[(?P<rules>[A-Za-z0-9_,\- ]+)\])?", re.IGNORECASE
)


class LintError(Exception):
    """An invalid analysis request (unknown rule name, unreadable path)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule violation anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The conventional ``path:line:col: rule: message`` text form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass
class ParsedModule:
    """One successfully parsed source file and its suppression table."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    #: line number -> rule names suppressed there ("*" suppresses all rules).
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def suppressed(self, line: int, rule: str) -> bool:
        rules = self.suppressions.get(line)
        if not rules:
            return False
        return "*" in rules or rule in rules


@dataclass
class Project:
    """Every parsed module of one analysis run, keyed by relative path."""

    modules: List[ParsedModule]

    def find(self, suffix: str) -> Optional[ParsedModule]:
        """The module whose relative path ends with ``suffix`` (posix)."""
        for module in self.modules:
            if module.relpath == suffix or module.relpath.endswith("/" + suffix):
                return module
        return None


class Rule:
    """Base class for analysis rules.

    Subclasses set ``name`` (the selectable, suppressible identifier) and
    ``description``, then implement :meth:`check`, yielding findings for the
    whole project — per-file rules simply iterate ``project.modules``.

    ``scope`` declares what a finding may depend on, and is what makes the
    incremental cache sound: a ``"file"`` rule promises that each module's
    findings are a function of that module's content alone (its results are
    cached per content hash and the rule re-runs only over changed files);
    a ``"project"`` rule may read anything in the project (its results are
    cached under a whole-project fingerprint and re-run when any file
    changes).  When unsure, ``"project"`` is always safe.
    """

    name: str = ""
    description: str = ""
    scope: str = "file"

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``rule_cls`` to the global rule registry."""
    if not rule_cls.name:
        raise ValueError(f"rule {rule_cls.__name__} has no name")
    if rule_cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule_cls.name!r}")
    _REGISTRY[rule_cls.name] = rule_cls
    return rule_cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """A copy of the rule registry (name -> class)."""
    return dict(_REGISTRY)


def rule_names() -> List[str]:
    """All registered rule names, sorted."""
    return sorted(_REGISTRY)


def _parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Per-line ``# repro: noqa[...]`` directives, via the token stream.

    Tokenizing (rather than regexing raw lines) keeps directives inside
    string literals from suppressing anything.

    A directive anywhere in a multi-line *logical* line (a call spanning
    several physical lines, a parenthesized expression) suppresses every
    physical line of that statement — rules anchor findings to whichever
    line the relevant AST node starts on, which for a continuation-line
    argument is not the line carrying the comment.  A directive on a
    comment-only line applies to that line alone (it does not bleed into
    the following statement).
    """
    table: Dict[int, Set[str]] = {}
    #: noqa rule sets seen inside the current logical line.
    pending: List[Set[str]] = []
    #: First physical line of the current logical line, if inside one.
    logical_start: Optional[int] = None
    skip = (
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    )
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                match = _NOQA_RE.search(tok.string)
                if match is None:
                    continue
                listed = match.group("rules")
                if listed is None:
                    names = {"*"}
                else:
                    names = {
                        part.strip() for part in listed.split(",") if part.strip()
                    }
                table.setdefault(tok.start[0], set()).update(names)
                pending.append(names)
            elif tok.type == tokenize.NEWLINE:
                if pending and logical_start is not None:
                    for line in range(logical_start, tok.start[0] + 1):
                        for names in pending:
                            table.setdefault(line, set()).update(names)
                pending = []
                logical_start = None
            elif tok.type == tokenize.NL:
                if logical_start is None:
                    pending = []  # comment-only line: stays per-line
            elif tok.type not in skip:
                if logical_start is None:
                    logical_start = tok.start[0]
    except tokenize.TokenError:
        pass
    return table


def collect_python_files(
    paths: Sequence[Path],
    *,
    exclude: Optional[Sequence[str]] = None,
) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list.

    ``exclude`` entries are posix path fragments; a file whose posix path
    contains one (``tests/analysis/fixtures``) is dropped.  Rule fixtures
    deliberately violate the rules — they must be collectable as explicit
    single-file arguments in tests yet never swept up by a directory walk.
    """
    fragments = [fragment.strip("/") for fragment in (exclude or []) if fragment]
    seen: Set[Path] = set()
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise LintError(f"no such file or directory: {path}")
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            posix = candidate.resolve().as_posix()
            if any(fragment in posix for fragment in fragments):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def _relpath(path: Path) -> str:
    """``path`` relative to the current directory when possible, posix-style."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return resolved.as_posix()


def load_project(files: Sequence[Path]) -> tuple[Project, List[Finding]]:
    """Parse ``files``; unparseable ones become ``syntax-error`` findings."""
    modules: List[ParsedModule] = []
    errors: List[Finding] = []
    for path in files:
        relpath = _relpath(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            errors.append(Finding(relpath, 1, 1, SYNTAX_RULE, str(exc)))
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    relpath,
                    exc.lineno or 1,
                    (exc.offset or 1),
                    SYNTAX_RULE,
                    f"cannot parse: {exc.msg}",
                )
            )
            continue
        modules.append(
            ParsedModule(
                path=path,
                relpath=relpath,
                source=source,
                tree=tree,
                suppressions=_parse_suppressions(source),
            )
        )
    return Project(modules=modules), errors


def _resolve_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> List[Rule]:
    available = registered_rules()
    chosen = list(select) if select else sorted(available)
    if "all" in chosen:
        chosen = sorted(available)
    for name in list(chosen) + list(ignore or []):
        if name not in available:
            raise LintError(
                f"unknown rule {name!r} "
                f"(available: all, {', '.join(sorted(available))})"
            )
    ignored = set(ignore or [])
    return [available[name]() for name in chosen if name not in ignored]


def _analysis_fingerprint() -> str:
    """A hash over the analysis implementation itself.

    Baked into every cache entry so that editing any rule, the engine, or
    the units conventions invalidates the whole cache — a stale cache must
    never certify a tree clean against rules that no longer exist.
    """
    digest = hashlib.sha256()
    package_dir = Path(__file__).resolve().parent
    sources = sorted(package_dir.glob("*.py"))
    units = package_dir.parent / "units.py"
    if units.is_file():
        sources.append(units)
    for source in sources:
        digest.update(source.name.encode())
        try:
            digest.update(source.read_bytes())
        except OSError:
            digest.update(b"?")
    return digest.hexdigest()


def _file_hash(path: Path) -> str:
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return "unreadable"


def _encode_findings(findings: Iterable[Finding]) -> List[List[object]]:
    return [[f.path, f.line, f.col, f.rule, f.message] for f in findings]


def _decode_findings(raw: object) -> Optional[List[Finding]]:
    if not isinstance(raw, list):
        return None
    out: List[Finding] = []
    for item in raw:
        if (
            not isinstance(item, list)
            or len(item) != 5
            or not isinstance(item[0], str)
            or not isinstance(item[1], int)
            or not isinstance(item[2], int)
            or not isinstance(item[3], str)
            or not isinstance(item[4], str)
        ):
            return None
        out.append(Finding(item[0], item[1], item[2], item[3], item[4]))
    return out


def _load_cache(cache_path: Path, stamp: str) -> Dict[str, object]:
    """The cache file's contents, or an empty cache when missing/stale.

    ``stamp`` binds the cache to the analysis fingerprint, the effective
    rule selection, and the exclusion list — change any of those and every
    entry is discarded (a finding set is only reusable under the exact
    configuration that produced it).
    """
    empty: Dict[str, object] = {
        "version": _CACHE_VERSION,
        "stamp": stamp,
        "files": {},
        "project": {},
    }
    try:
        raw = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return empty
    if not isinstance(raw, dict):
        return empty
    if raw.get("version") != _CACHE_VERSION or raw.get("stamp") != stamp:
        return empty
    if not isinstance(raw.get("files"), dict) or not isinstance(
        raw.get("project"), dict
    ):
        return empty
    return raw


def analyze_paths(
    paths: Sequence[Path],
    *,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    exclude: Optional[Sequence[str]] = None,
    cache_path: Optional[Path] = None,
) -> List[Finding]:
    """Run the (selected) rules over ``paths``; the public engine entry.

    Returns findings sorted by location.  Suppressed findings are dropped;
    ``syntax-error`` findings are always included — an unparseable file can
    never be certified clean.  ``select`` accepts rule names or ``"all"``;
    ``exclude`` drops files whose path contains a fragment.

    With ``cache_path`` set, results are cached incrementally by content
    hash: per-file for ``scope="file"`` rules (plus syntax errors), under a
    whole-project fingerprint for ``scope="project"`` rules.  An unchanged
    tree re-lints without parsing a single file; a cached run's findings
    are bit-identical to a cold run's because suppressions are content-
    derived and the cache stamp covers the analysis sources themselves
    (see :func:`_analysis_fingerprint`).
    """
    rules = _resolve_rules(select, ignore)
    files = collect_python_files([Path(p) for p in paths], exclude=exclude)

    if cache_path is None:
        project, findings = load_project(files)
        by_path = {module.relpath: module for module in project.modules}
        for rule in rules:
            for finding in rule.check(project):
                module = by_path.get(finding.path)
                if module is not None and module.suppressed(
                    finding.line, finding.rule
                ):
                    continue
                findings.append(finding)
        return sorted(findings)

    file_rules = [rule for rule in rules if rule.scope == "file"]
    project_rules = [rule for rule in rules if rule.scope != "file"]
    stamp = hashlib.sha256(
        json.dumps(
            {
                "analysis": _analysis_fingerprint(),
                "rules": sorted(rule.name for rule in rules),
                "exclude": sorted(exclude or []),
            },
            sort_keys=True,
        ).encode()
    ).hexdigest()
    cache = _load_cache(cache_path, stamp)
    cached_files = cache["files"]
    assert isinstance(cached_files, dict)

    hashes = {_relpath(path): _file_hash(path) for path in files}
    project_fingerprint = hashlib.sha256(
        json.dumps(sorted(hashes.items())).encode()
    ).hexdigest()

    fresh_files: Dict[str, Dict[str, object]] = {}
    dirty: List[Path] = []
    per_file: Dict[str, List[Finding]] = {}
    for path in files:
        relpath = _relpath(path)
        entry = cached_files.get(relpath)
        decoded = (
            _decode_findings(entry.get("findings"))
            if isinstance(entry, dict) and entry.get("hash") == hashes[relpath]
            else None
        )
        if decoded is not None:
            per_file[relpath] = decoded
        else:
            dirty.append(path)

    cached_project = cache["project"]
    assert isinstance(cached_project, dict)
    project_findings: Optional[List[Finding]] = None
    if cached_project.get("fingerprint") == project_fingerprint:
        project_findings = _decode_findings(cached_project.get("findings"))

    needs_parse = bool(dirty) or (project_findings is None and project_rules)
    if needs_parse:
        project, parse_errors = load_project(files)
        by_path = {module.relpath: module for module in project.modules}
        if dirty:
            dirty_paths = {_relpath(path) for path in dirty}
            for relpath in dirty_paths:
                per_file[relpath] = [
                    e for e in parse_errors if e.path == relpath
                ]
            dirty_project = Project(
                modules=[m for m in project.modules if m.relpath in dirty_paths]
            )
            for rule in file_rules:
                for finding in rule.check(dirty_project):
                    module = by_path.get(finding.path)
                    if module is not None and module.suppressed(
                        finding.line, finding.rule
                    ):
                        continue
                    per_file.setdefault(finding.path, []).append(finding)
        if project_findings is None and project_rules:
            project_findings = []
            for rule in project_rules:
                for finding in rule.check(project):
                    module = by_path.get(finding.path)
                    if module is not None and module.suppressed(
                        finding.line, finding.rule
                    ):
                        continue
                    project_findings.append(finding)
    if project_findings is None:
        project_findings = []

    for relpath, digest in hashes.items():
        fresh_files[relpath] = {
            "hash": digest,
            "findings": _encode_findings(sorted(per_file.get(relpath, []))),
        }
    payload = {
        "version": _CACHE_VERSION,
        "stamp": stamp,
        "files": fresh_files,
        "project": {
            "fingerprint": project_fingerprint,
            "findings": _encode_findings(sorted(project_findings)),
        },
    }
    try:
        cache_path.write_text(
            json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
        )
    except OSError:
        pass  # an unwritable cache degrades to a cold run, never an error

    findings = [f for file_findings in per_file.values() for f in file_findings]
    findings.extend(project_findings)
    return sorted(findings)
