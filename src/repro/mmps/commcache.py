"""Memoized per-route communication schedules for MMPS.

Steady-state data-parallel cycles re-send *identical* messages: the same
(source, destination, byte-count) triples, cycle after cycle.  Before this
cache, every such message re-resolved its route, re-derived the path MTU,
and re-built its fragment list from scratch — per message, per cycle.  The
logical-cluster communication literature (arXiv:cs/0408033) makes the
general point this module applies: the communication *round* for a fixed
topology and message size is a static object worth computing once.

:class:`CommRoundCache` memoizes, per ``(src cluster, dst cluster)`` pair:

* the **path MTU** (smallest link MTU along the route, minus the MMPS
  header) — the fragmentation threshold;
* per message size, the **fragment plan**: the exact datagram payload
  sizes a message of ``nbytes`` is cut into.

Fragment-plan invariant (regression-tested): a plan never contains a
zero-byte fragment *except* the single mandatory datagram of an empty
message.  Messages that are an exact MTU multiple fragment into exactly
``nbytes // mtu`` full datagrams — no zero-byte trailer, which would
otherwise cost a full datagram + ack round trip per message per cycle.

Entries are validated against the routing fabric's topology revision
(:attr:`~repro.hardware.routing.RoutingFabric.version`), so a fabric mutated
after traffic has flowed (extra segment, new router port) transparently
flushes the memo instead of serving stale routes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import MessagingError
from repro.hardware.processor import Processor

if TYPE_CHECKING:  # pragma: no cover
    from repro.mmps.system import MMPS

__all__ = ["CommRoundCache", "fragment_plan"]


def fragment_plan(nbytes: int, mtu: int) -> tuple[int, ...]:
    """Datagram payload sizes for a message of ``nbytes`` under ``mtu``.

    Closed form: ``ceil(nbytes / mtu)`` datagrams, all full except a
    non-zero remainder tail.  An empty message still takes one (zero-byte
    payload) datagram — something must carry it — but exact MTU multiples
    never grow a zero-byte trailing fragment.
    """
    if mtu <= 0:
        raise MessagingError(f"fragmentation threshold must be positive, got {mtu}")
    if nbytes < 0:
        raise MessagingError(f"message size must be non-negative, got {nbytes}")
    count = max(1, -(-nbytes // mtu))
    tail = nbytes - mtu * (count - 1)
    return (mtu,) * (count - 1) + (tail,)


class CommRoundCache:
    """Memoizes path MTUs and fragment plans for one :class:`MMPS` instance.

    Keys are cluster names, not processor ids: within the §3 model every
    node of a cluster sits on the same segment, so all pairs drawn from the
    same two clusters share a route.  A 12-node stencil therefore needs at
    most a handful of entries however many cycles it runs.
    """

    def __init__(self, mmps: "MMPS") -> None:
        self._mmps = mmps
        self._mtus: dict[tuple[str, str], int] = {}
        self._plans: dict[tuple[str, str, int], tuple[int, ...]] = {}
        self._fabric_version = mmps.network.fabric.version
        self.hits = 0
        self.misses = 0
        # Memo traffic is host-domain: it reflects cache state (how the
        # run computed), not simulated behaviour — a fast-forwarded run
        # legitimately takes fewer hits than an event-stepped one.
        self._m_hits = mmps.metrics.counter(
            "mmps.commcache.hits", domain="host", help="fragment-plan memo hits"
        )
        self._m_misses = mmps.metrics.counter(
            "mmps.commcache.misses", domain="host", help="fragment-plan memo misses"
        )

    def _fresh(self) -> None:
        version = self._mmps.network.fabric.version
        if version != self._fabric_version:
            self.invalidate()
            self._fabric_version = version

    def invalidate(self) -> None:
        """Drop every memoized route artifact (topology changed)."""
        self._mtus.clear()
        self._plans.clear()

    def path_mtu(self, src: Processor, dst: Processor) -> int:
        """Fragmentation threshold (payload bytes per datagram) src → dst."""
        self._fresh()
        key = (src.cluster_name, dst.cluster_name)
        mtu = self._mtus.get(key)
        if mtu is None:
            self.misses += 1
            self._m_misses.inc()
            mtu = self._mmps._path_payload_mtu(src, dst)
            self._mtus[key] = mtu
        else:
            self.hits += 1
            self._m_hits.inc()
        return mtu

    def fragment_sizes(self, src: Processor, dst: Processor, nbytes: int) -> tuple[int, ...]:
        """The memoized fragment plan for one (route, message size)."""
        self._fresh()
        key = (src.cluster_name, dst.cluster_name, nbytes)
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            self._m_misses.inc()
            plan = fragment_plan(nbytes, self.path_mtu(src, dst))
            self._plans[key] = plan
        else:
            self.hits += 1
            self._m_hits.inc()
        return plan

    def round_datagrams(self, src: Processor, dst: Processor, nbytes: int) -> int:
        """Datagram count of one message — ``len(fragment_sizes(...))``."""
        return len(self.fragment_sizes(src, dst, nbytes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CommRoundCache {len(self._plans)} plans, "
            f"{self.hits} hits / {self.misses} misses>"
        )
