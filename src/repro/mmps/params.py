"""Tunable cost parameters of the MMPS protocol stack.

These model the *host-side* software path of an early-90s UDP stack: a fixed
per-message cost (system call, header construction, scheduling), a per-byte
copy cost (user ↔ kernel ↔ NIC copies), and a smaller per-datagram cost for
fragmentation/interrupt handling.  All host costs scale with the processor
type's ``comm_speed_factor``, so slower machines communicate more slowly on
an identical segment — matching the paper's Sun4-vs-Sun3 remark and the
different fitted constants of the Sparc2 and IPC clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.processor import ProcessorSpec

__all__ = ["HostCostParams"]


@dataclass(frozen=True)
class HostCostParams:
    """Host protocol-processing costs (reference-host milliseconds)."""

    send_per_message_ms: float = 0.75
    send_per_byte_ms: float = 0.00050
    send_per_datagram_ms: float = 0.12
    recv_per_message_ms: float = 0.75
    recv_per_byte_ms: float = 0.00060
    recv_per_datagram_ms: float = 0.12
    #: Sender-side cost to initiate an asynchronous send.  The user→stack
    #: copy is synchronous even for async sends (only the wire time
    #: overlaps), so the per-byte part matches the blocking send path.
    async_init_per_message_ms: float = 0.35
    async_init_per_byte_ms: float = 0.00050
    #: How long a sender waits for an ack before retransmitting.
    retransmit_timeout_ms: float = 60.0
    #: Give up after this many retransmissions of one message.
    max_retries: int = 20

    def __post_init__(self) -> None:
        numeric = (
            self.send_per_message_ms,
            self.send_per_byte_ms,
            self.send_per_datagram_ms,
            self.recv_per_message_ms,
            self.recv_per_byte_ms,
            self.recv_per_datagram_ms,
            self.async_init_per_message_ms,
            self.async_init_per_byte_ms,
        )
        if any(v < 0 for v in numeric):
            raise ValueError("host costs must be non-negative")
        if self.retransmit_timeout_ms <= 0:
            raise ValueError("retransmit timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    def send_cost_ms(self, spec: ProcessorSpec, nbytes: int, ndatagrams: int) -> float:
        """Synchronous send-path CPU time on a host of type ``spec``."""
        raw = (
            self.send_per_message_ms
            + self.send_per_byte_ms * nbytes
            + self.send_per_datagram_ms * ndatagrams
        )
        return raw * spec.comm_speed_factor

    def async_init_cost_ms(self, spec: ProcessorSpec, nbytes: int) -> float:
        """Inline CPU time to launch an asynchronous send."""
        raw = self.async_init_per_message_ms + self.async_init_per_byte_ms * nbytes
        return raw * spec.comm_speed_factor

    def recv_cost_ms(self, spec: ProcessorSpec, nbytes: int, ndatagrams: int) -> float:
        """Receive-path CPU time on a host of type ``spec``."""
        raw = (
            self.recv_per_message_ms
            + self.recv_per_byte_ms * nbytes
            + self.recv_per_datagram_ms * ndatagrams
        )
        return raw * spec.comm_speed_factor
