"""The MMPS reliable message system: endpoints, fragmentation, acks.

This module reproduces the observable behaviour of MMPS [5]: reliable,
heterogeneous message passing over UDP-style datagrams.  Each processor gets
an :class:`Endpoint`; messages are fragmented to the segment MTU, transmitted
through the simulated network (paying contention and router costs), optionally
dropped (loss injection), acknowledged, and retransmitted on timeout.

Cost placement
--------------
* **send** (blocking): full send-path CPU inline, then transmission + ack.
* **isend** (asynchronous): a small initiation cost inline (copy into the
  stack); transmission proceeds in a background process — this is what lets
  STEN-2 overlap border exchange with grid computation.
* **recv** (blocking): waits for the reassembled message, then pays the
  receive-path CPU plus any coercion cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import MessagingError, PeerUnreachableError
from repro.hardware.network import HeterogeneousNetwork
from repro.hardware.processor import Processor
from repro.mmps.coercion import CoercionPolicy
from repro.mmps.commcache import CommRoundCache
from repro.mmps.message import Datagram, Message
from repro.mmps.params import HostCostParams
from repro.sim import Event, Store
from repro.sim.process import ProcessGenerator
from repro.telemetry import NULL_REGISTRY

__all__ = ["MMPS", "Endpoint", "EndpointStats", "MMPS_HEADER_BYTES"]

#: Per-datagram MMPS protocol header carried on the wire.
MMPS_HEADER_BYTES = 24


@dataclass
class EndpointStats:
    """Cumulative per-endpoint counters (useful in tests and benchmarks)."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    datagrams_sent: int = 0
    acks_sent: int = 0
    retransmissions: int = 0


class MMPS:
    """The message system: one per simulated network.

    Parameters
    ----------
    network:
        The simulated :class:`HeterogeneousNetwork` to run over.
    host_costs:
        Protocol-stack CPU cost model; defaults are era-calibrated.
    coercion:
        Cross-format conversion policy.
    loss_rate:
        Per-datagram drop probability (applied to data and ack datagrams).
    reliable:
        When ``True`` (MMPS semantics), messages are acked and retransmitted;
        ``False`` gives raw datagram best-effort delivery.
    metrics:
        Optional :class:`~repro.telemetry.MetricsRegistry`.  Transport
        counters (messages, bytes, datagrams, acks, retransmissions,
        losses) are **sim-domain** integers — what the simulated protocol
        did — so the fast-forward engine can advance them exactly across
        skipped steady-state cycles (see :mod:`repro.sim.fastforward`).
    """

    def __init__(
        self,
        network: HeterogeneousNetwork,
        *,
        host_costs: Optional[HostCostParams] = None,
        coercion: Optional[CoercionPolicy] = None,
        loss_rate: float = 0.0,
        reliable: bool = True,
        metrics=None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.network = network
        self.sim = network.sim
        self.host_costs = host_costs or HostCostParams()
        self.coercion = coercion or CoercionPolicy()
        self.loss_rate = loss_rate
        self.reliable = reliable
        self._endpoints: dict[int, Endpoint] = {}
        self._loss_rng = network.streams.get("mmps.loss")
        self.datagrams_lost = 0
        self._dead: set[int] = set()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        m = self.metrics
        self._m_messages_sent = m.counter("mmps.messages_sent", help="messages delivered with assurance")
        self._m_messages_received = m.counter("mmps.messages_received", help="messages received")
        self._m_bytes_sent = m.counter("mmps.bytes_sent", help="payload bytes sent")
        self._m_bytes_received = m.counter("mmps.bytes_received", help="payload bytes received")
        self._m_datagrams_sent = m.counter("mmps.datagrams_sent", help="data datagrams put on the wire")
        self._m_acks_sent = m.counter("mmps.acks_sent", help="acknowledgement datagrams sent")
        self._m_retransmissions = m.counter("mmps.retransmissions", help="retransmission rounds")
        self._m_datagrams_lost = m.counter("mmps.datagrams_lost", help="datagrams dropped (loss or dead host)")
        #: Memoized per-route MTUs and fragment plans; steady-state cycles
        #: resend identical (route, size) messages, so fragmentation becomes
        #: a dict hit instead of a route resolution per message.
        self.comm_cache = CommRoundCache(self)

    def fail_processor(self, proc_id: int) -> None:
        """Fail-stop injection: the node vanishes from the message layer.

        Every datagram addressed to (or sent by) the processor is silently
        dropped from now on, exactly as a crashed host behaves on the wire.
        Reliable senders keep retransmitting until their retry budget is
        exhausted and then raise :class:`~repro.errors.PeerUnreachableError`
        with the destination and attempt count — the surfaced timeout a
        supervisor turns into a repartitioning trigger.
        """
        self._dead.add(proc_id)
        self.network.tracer.record("mmps", "fail", proc=proc_id)

    def is_failed(self, proc_id: int) -> bool:
        """Whether the message layer treats the processor as crashed."""
        return proc_id in self._dead

    def endpoint(self, proc: Processor) -> "Endpoint":
        """Get (creating on first use) the endpoint bound to ``proc``."""
        ep = self._endpoints.get(proc.proc_id)
        if ep is None:
            ep = Endpoint(self, proc)
            self._endpoints[proc.proc_id] = ep
        return ep

    def mtu_bytes(self, proc: Processor, dst: Optional[Processor] = None) -> int:
        """Fragmentation threshold for messages from ``proc`` (to ``dst``).

        The *path* MTU — the smallest link MTU along the route (source
        segment, plus the destination segment when the message crosses the
        router) — minus the MMPS per-datagram header, so every datagram
        fits every frame it rides.
        """
        if dst is not None:
            return self.comm_cache.path_mtu(proc, dst)
        return self._path_payload_mtu(proc, None)

    def _path_payload_mtu(self, proc: Processor, dst: Optional[Processor]) -> int:
        """Uncached MTU resolution — :class:`CommRoundCache`'s miss path."""
        if dst is not None:
            link_mtu = self.network.path_mtu(proc, dst)
        else:
            link_mtu = self.network.cluster(proc.cluster_name).segment.params.mtu_bytes
        payload = link_mtu - MMPS_HEADER_BYTES
        if payload <= 0:
            raise MessagingError(
                f"segment MTU {link_mtu} too small for the {MMPS_HEADER_BYTES}-byte "
                "MMPS header"
            )
        return payload

    # -- datagram transport ------------------------------------------------------

    def _transmit_datagram(self, dgram: Datagram) -> ProcessGenerator:
        """Carry one datagram through the network, then deliver or drop it."""
        src = self.network.processor(dgram.src)
        dst = self.network.processor(dgram.dst)
        if dgram.src in self._dead or dgram.dst in self._dead:
            # A crashed endpoint neither transmits nor receives; the frame
            # never reaches the wire (or falls off it at the dead NIC).
            self.datagrams_lost += 1
            self._m_datagrams_lost.inc()
            self.network.tracer.record(
                "mmps", "dead-drop", msg_id=dgram.msg_id, src=dgram.src, dst=dgram.dst
            )
            return None
        yield from self.network.transfer_frame(src, dst, dgram.nbytes + MMPS_HEADER_BYTES)
        if self.loss_rate > 0.0 and float(self._loss_rng.random()) < self.loss_rate:
            self.datagrams_lost += 1
            self._m_datagrams_lost.inc()
            self.network.tracer.record(
                "mmps", "drop", msg_id=dgram.msg_id, frag=dgram.frag_index
            )
            return None
        dst_ep = self._endpoints.get(dgram.dst)
        if dst_ep is None:
            raise MessagingError(
                f"datagram for processor {dgram.dst} but no endpoint is bound there"
            )
        dst_ep._on_datagram(dgram)
        return None


class Endpoint:
    """One processor's attachment to MMPS.

    Obtain via :meth:`MMPS.endpoint`.  All public operations are generators
    to be driven inside simulated processes (``yield from`` for inline work,
    ``yield`` on returned events for completions).
    """

    def __init__(self, mmps: MMPS, proc: Processor) -> None:
        self.mmps = mmps
        self.proc = proc
        self.sim = mmps.sim
        self._messages = Store(self.sim)
        self._reassembly: dict[int, dict[int, Datagram]] = {}
        self._completed: set[int] = set()
        self._ack_events: dict[int, Event] = {}
        # Pairwise-FIFO delivery: per-destination send sequence, and a
        # per-source reorder buffer holding completed messages that arrived
        # ahead of a retransmitted predecessor.
        self._send_seq: dict[int, int] = {}
        self._next_deliver: dict[int, int] = {}
        self._reorder: dict[int, dict[int, Message]] = {}
        self.stats = EndpointStats()

    # -- sending ---------------------------------------------------------------

    def _make_message(
        self, dst: Processor, nbytes: int, tag: str, payload: Any
    ) -> Message:
        seq = self._send_seq.get(dst.proc_id, 0)
        self._send_seq[dst.proc_id] = seq + 1
        return Message(
            src=self.proc.proc_id,
            dst=dst.proc_id,
            nbytes=nbytes,
            tag=tag,
            payload=payload,
            src_format=self.proc.spec.data_format,
            seq=seq,
        )

    def _fragments(self, msg: Message) -> list[Datagram]:
        # Memoized closed-form plan: never a zero-byte trailing fragment —
        # an exact-MTU-multiple message is exactly nbytes/mtu full datagrams;
        # only the mandatory single datagram of an empty message carries 0.
        sizes = self.mmps.comm_cache.fragment_sizes(
            self.proc, self.mmps.network.processor(msg.dst), msg.nbytes
        )
        count = len(sizes)
        return [
            Datagram(
                msg_id=msg.msg_id,
                src=msg.src,
                dst=msg.dst,
                frag_index=i,
                frag_count=count,
                nbytes=size,
                message=msg if i == count - 1 else None,
            )
            for i, size in enumerate(sizes)
        ]

    def send(
        self, dst: Processor, nbytes: int, tag: str = "", payload: Any = None
    ) -> ProcessGenerator:
        """Blocking send: returns (via StopIteration) once delivery is assured.

        Pays the full synchronous send CPU cost inline, then transmits and —
        in reliable mode — waits for the acknowledgement.
        """
        msg = self._make_message(dst, nbytes, tag, payload)
        frags = self._fragments(msg)
        cost = self.mmps.host_costs.send_cost_ms(self.proc.spec, nbytes, len(frags))
        yield self.sim.timeout(cost)
        yield self.sim.process(
            self._transmit_message(msg, frags), name=f"send:{msg.msg_id}"
        )
        return msg

    def isend(
        self, dst: Processor, nbytes: int, tag: str = "", payload: Any = None
    ) -> ProcessGenerator:
        """Asynchronous send: returns a completion event after a small inline cost.

        Use as ``done = yield from ep.isend(...)``; ``yield done`` later to
        wait for delivery assurance (the ack in reliable mode).
        """
        msg = self._make_message(dst, nbytes, tag, payload)
        frags = self._fragments(msg)
        init = self.mmps.host_costs.async_init_cost_ms(self.proc.spec, nbytes)
        yield self.sim.timeout(init)
        proc = self.sim.process(
            self._transmit_message(msg, frags), name=f"isend:{msg.msg_id}"
        )
        # Deliberately NOT defused: a sender may never wait on completion,
        # and a *successful* unawaited transmission is silent — but a failed
        # one (exhausted retries, protocol bug) must crash the simulation
        # rather than masquerade as a lost message.
        return proc

    def _transmit_message(self, msg: Message, frags: list[Datagram]) -> ProcessGenerator:
        """Transmit all fragments; in reliable mode, await ack / retransmit."""
        costs = self.mmps.host_costs
        ack_event: Optional[Event] = None
        if self.mmps.reliable:
            ack_event = self._ack_events.setdefault(msg.msg_id, self.sim.event())
        attempt = 0
        while True:
            for dgram in frags:
                # One NIC: fragments leave the host serially.
                yield from self.mmps._transmit_datagram(dgram)
                self.stats.datagrams_sent += 1
                self.mmps._m_datagrams_sent.inc()
            if not self.mmps.reliable or ack_event is None:
                break
            if ack_event.triggered:
                break
            timeout = self.sim.timeout(costs.retransmit_timeout_ms)
            winner, _value = yield self.sim.any_of([ack_event, timeout])
            if winner is ack_event:
                break
            attempt += 1
            self.stats.retransmissions += 1
            self.mmps._m_retransmissions.inc()
            if attempt > costs.max_retries:
                self._ack_events.pop(msg.msg_id, None)
                raise PeerUnreachableError(msg.msg_id, msg.dst, attempt)
        self._ack_events.pop(msg.msg_id, None)
        self.stats.messages_sent += 1
        self.stats.bytes_sent += msg.nbytes
        self.mmps._m_messages_sent.inc()
        self.mmps._m_bytes_sent.inc(msg.nbytes)
        return msg

    # -- receiving --------------------------------------------------------------

    def recv(
        self, src: Optional[Processor] = None, tag: Optional[str] = None
    ) -> ProcessGenerator:
        """Blocking receive, optionally selective on source and/or tag.

        Returns the :class:`Message` after paying receive-path CPU and any
        coercion cost.
        """

        def matches(msg: Message) -> bool:
            if src is not None and msg.src != src.proc_id:
                return False
            if tag is not None and msg.tag != tag:
                return False
            return True

        msg: Message = yield self._messages.get(matches)
        ndgrams = self.mmps.comm_cache.round_datagrams(
            self.proc, self.mmps.network.processor(msg.src), msg.nbytes
        )
        cost = self.mmps.host_costs.recv_cost_ms(self.proc.spec, msg.nbytes, ndgrams)
        cost += self.mmps.coercion.cost_ms(msg.src_format, self.proc.spec, msg.nbytes)
        yield self.sim.timeout(cost)
        self.stats.messages_received += 1
        self.stats.bytes_received += msg.nbytes
        self.mmps._m_messages_received.inc()
        self.mmps._m_bytes_received.inc(msg.nbytes)
        return msg

    def irecv(self, src: Optional[Processor] = None, tag: Optional[str] = None):
        """Non-blocking receive: returns a :class:`Process` to wait on later."""
        return self.sim.process(self.recv(src=src, tag=tag), name="irecv")

    @property
    def pending_messages(self) -> int:
        """Completed messages waiting to be received."""
        return len(self._messages)

    # -- datagram arrival ---------------------------------------------------------

    def _on_datagram(self, dgram: Datagram) -> None:
        if dgram.is_ack:
            event = self._ack_events.get(dgram.msg_id)
            if event is not None and not event.triggered:
                event.succeed(dgram.msg_id)
            return
        if dgram.msg_id in self._completed:
            # Duplicate after delivery (our ack was lost): re-ack so the
            # sender stops retransmitting.
            if self.mmps.reliable:
                self._send_ack(dgram)
            return
        frags = self._reassembly.setdefault(dgram.msg_id, {})
        frags[dgram.frag_index] = dgram
        if len(frags) == dgram.frag_count:
            final = frags[dgram.frag_count - 1]
            assert final.message is not None
            del self._reassembly[dgram.msg_id]
            self._completed.add(dgram.msg_id)
            self._deliver_in_order(final.message)
            if self.mmps.reliable:
                self._send_ack(dgram)

    def _deliver_in_order(self, msg: Message) -> None:
        """Pairwise FIFO: hand messages of one sender over in send order.

        In unreliable mode there is no retransmission to wait for, so a gap
        in the sequence would stall the channel forever — messages are
        delivered as they complete instead.
        """
        if not self.mmps.reliable:
            self._messages.put(msg)
            return
        src = msg.src
        expected = self._next_deliver.get(src, 0)
        if msg.seq != expected:
            self._reorder.setdefault(src, {})[msg.seq] = msg
            return
        self._messages.put(msg)
        expected += 1
        buffered = self._reorder.get(src, {})
        while expected in buffered:
            self._messages.put(buffered.pop(expected))
            expected += 1
        self._next_deliver[src] = expected

    def _send_ack(self, dgram: Datagram) -> None:
        ack = Datagram(
            msg_id=dgram.msg_id,
            src=self.proc.proc_id,
            dst=dgram.src,
            frag_index=0,
            frag_count=1,
            nbytes=Datagram.ACK_BYTES,
            is_ack=True,
        )
        self.stats.acks_sent += 1
        self.mmps._m_acks_sent.inc()
        self.sim.process(self.mmps._transmit_datagram(ack), name=f"ack:{dgram.msg_id}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Endpoint proc={self.proc.proc_id} ({self.proc.spec.name})>"
