"""Message and datagram value types for the MMPS layer.

MMPS (the paper's Modular Message Passing System [5]) is a *reliable*
message system built on UDP datagrams.  A :class:`Message` is what tasks
exchange; it is fragmented into :class:`Datagram`\\ s no larger than the
segment MTU for transmission and reassembled at the receiver.

Timing is driven entirely by ``nbytes``; ``payload`` optionally carries real
data (e.g. NumPy border rows) so applications can verify numerics on top of
the simulated timeline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Message", "Datagram", "next_message_id"]

_message_counter = itertools.count(1)


def next_message_id() -> int:
    """Globally unique, monotonically increasing message id."""
    return next(_message_counter)


@dataclass(frozen=True)
class Message:
    """One application-level message.

    Attributes
    ----------
    src, dst:
        Global processor ids of sender and receiver.
    nbytes:
        Authoritative size for all cost accounting.
    tag:
        Application demultiplexing key (e.g. ``"north"``/``"south"``).
    payload:
        Optional real data riding along for value-level verification.
    src_format:
        Sender's native data format; receivers compare against their own to
        decide whether coercion cost applies.
    seq:
        Per-(src, dst) channel sequence number.  MMPS delivers messages of a
        pair **in send order** (pairwise FIFO, like MPI): without it, a
        lost-and-retransmitted message could be overtaken by a later one and
        applications would observe reordering under packet loss.
    """

    src: int
    dst: int
    nbytes: int
    tag: str = ""
    payload: Any = None
    src_format: str = "xdr-be"
    seq: int = 0
    msg_id: int = field(default_factory=next_message_id)

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"message nbytes must be non-negative, got {self.nbytes}")


@dataclass(frozen=True)
class Datagram:
    """One UDP-sized fragment of a message (or an acknowledgement).

    ``frag_index``/``frag_count`` drive reassembly; ``nbytes`` is the wire
    payload carried by this fragment.  Acks are small datagrams flowing
    receiver→sender with ``is_ack=True`` and ``msg_id`` of the acked message.
    """

    msg_id: int
    src: int
    dst: int
    frag_index: int
    frag_count: int
    nbytes: int
    is_ack: bool = False
    message: Optional[Message] = None  # carried on the final fragment

    #: Wire size of an acknowledgement datagram.
    ACK_BYTES = 32

    def __post_init__(self) -> None:
        if self.frag_count < 1 or not 0 <= self.frag_index < self.frag_count:
            raise ValueError(
                f"bad fragment indices: {self.frag_index}/{self.frag_count}"
            )
        if self.nbytes < 0:
            raise ValueError("datagram nbytes must be non-negative")
