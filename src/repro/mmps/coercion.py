"""Data-format coercion costs (the paper's ``T_coerce``).

When communicating processors support different data formats, a per-message
coercion cost linear in the message size must be paid (paper §3).  We charge
it on the receiving host — the convention of XDR-style "decode on receipt" —
scaled by that host's protocol-processing speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.processor import ProcessorSpec
from repro.units import usec_to_msec

__all__ = ["CoercionPolicy"]


@dataclass(frozen=True)
class CoercionPolicy:
    """Per-byte conversion cost between differing data formats.

    ``usec_per_byte`` is the reference-host cost of converting one byte
    (byte-swap plus bounds/representation fixups); a host with
    ``comm_speed_factor`` ``f`` pays ``f`` times that.
    """

    usec_per_byte: float = 0.4

    def __post_init__(self) -> None:
        if self.usec_per_byte < 0:
            raise ValueError("coercion cost must be non-negative")

    def required(self, src_format: str, dst_format: str) -> bool:
        """Whether messages between these formats need conversion."""
        return src_format != dst_format

    def cost_ms(self, src_format: str, dst_spec: ProcessorSpec, nbytes: int) -> float:
        """Coercion time on the receiving host, in ms (0 if formats match)."""
        if not self.required(src_format, dst_spec.data_format):
            return 0.0
        return usec_to_msec(self.usec_per_byte * dst_spec.comm_speed_factor * nbytes)
