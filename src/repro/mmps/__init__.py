"""MMPS — reliable heterogeneous message passing over simulated UDP.

A behavioural reproduction of the paper's message substrate [5]: message
fragmentation to the segment MTU, loss injection, acknowledgement and
retransmission, cross-format coercion costs, and asynchronous sends that let
applications overlap communication with computation.
"""

from repro.mmps.coercion import CoercionPolicy
from repro.mmps.commcache import CommRoundCache, fragment_plan
from repro.mmps.message import Datagram, Message
from repro.mmps.params import HostCostParams
from repro.mmps.system import MMPS, Endpoint, EndpointStats, MMPS_HEADER_BYTES

__all__ = [
    "CoercionPolicy",
    "CommRoundCache",
    "fragment_plan",
    "Datagram",
    "Message",
    "HostCostParams",
    "MMPS",
    "Endpoint",
    "EndpointStats",
    "MMPS_HEADER_BYTES",
]
