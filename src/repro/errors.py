"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "DeadlineExceededError",
    "DeadlockError",
    "NetworkModelError",
    "TopologyError",
    "AnnotationError",
    "PartitionError",
    "FittingError",
    "MessagingError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """A violation of the discrete-event kernel's protocol.

    Examples: triggering an event twice, yielding a non-event from a process
    generator, or scheduling with a negative delay.
    """


class DeadlineExceededError(ReproError):
    """An SPMD run was cancelled because it hit its wall-clock deadline.

    Raised by :meth:`repro.spmd.SPMDRun.execute` when ``deadline_ms`` is set
    and the tasks have not all completed in time; every live task is
    interrupted before the error propagates.
    """


class DeadlockError(SimulationError):
    """The event queue drained while a waited-on process was still pending.

    Raised by :meth:`repro.sim.Simulator.run_process` when the simulation can
    make no further progress but the driving process has not finished —
    typically a blocking receive whose matching send never happens.
    """


class NetworkModelError(ReproError):
    """The network description violates the model assumptions of Section 3.

    The partitioning method assumes segments of equal bandwidth, one
    homogeneous cluster per segment, and single-router (one hop) connectivity.
    :class:`repro.hardware.HeterogeneousNetwork` validates these on
    construction and raises this error on violation.
    """


class TopologyError(ReproError):
    """An invalid communication-topology request.

    Examples: asking for the neighbours of a rank outside ``[0, size)`` or
    building a 2-D topology with a non-rectangular task count.
    """


class AnnotationError(ReproError):
    """A data-parallel program's callback annotations are missing or invalid."""


class PartitionError(ReproError):
    """The partitioner could not produce a valid processor configuration."""


class FittingError(ReproError):
    """Cost-function fitting failed (degenerate design matrix, no samples)."""


class MessagingError(ReproError):
    """An MMPS message-layer protocol violation (bad address, closed port)."""
