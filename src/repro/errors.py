"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "DeadlineExceededError",
    "DeadlockError",
    "NetworkModelError",
    "TopologyError",
    "AnnotationError",
    "PartitionError",
    "ServeError",
    "ManagerUnreachableError",
    "FittingError",
    "MessagingError",
    "PeerUnreachableError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """A violation of the discrete-event kernel's protocol.

    Examples: triggering an event twice, yielding a non-event from a process
    generator, or scheduling with a negative delay.
    """


class DeadlineExceededError(ReproError):
    """An SPMD run was cancelled because it hit its wall-clock deadline.

    Raised by :meth:`repro.spmd.SPMDRun.execute` when ``deadline_ms`` is set
    and the tasks have not all completed in time; every live task is
    interrupted before the error propagates.
    """


class DeadlockError(SimulationError):
    """The event queue drained while a waited-on process was still pending.

    Raised by :meth:`repro.sim.Simulator.run_process` when the simulation can
    make no further progress but the driving process has not finished —
    typically a blocking receive whose matching send never happens.
    """


class NetworkModelError(ReproError):
    """The network description violates the model assumptions of Section 3.

    The partitioning method assumes segments of equal bandwidth, one
    homogeneous cluster per segment, and single-router (one hop) connectivity.
    :class:`repro.hardware.HeterogeneousNetwork` validates these on
    construction and raises this error on violation.
    """


class TopologyError(ReproError):
    """An invalid communication-topology request.

    Examples: asking for the neighbours of a rank outside ``[0, size)`` or
    building a 2-D topology with a non-rectangular task count.
    """


class AnnotationError(ReproError):
    """A data-parallel program's callback annotations are missing or invalid."""


class PartitionError(ReproError):
    """The partitioner could not produce a valid processor configuration."""


class ServeError(ReproError):
    """A decision-server failure: malformed wire request, unknown workload
    or cluster, or a client-visible service fault.

    Carries a machine-readable ``kind`` (``"bad-request"``, ``"internal"``,
    ...) that the server maps onto its typed error replies.
    """

    def __init__(self, message: str, *, kind: str = "bad-request") -> None:
        super().__init__(message)
        self.kind = kind


class ManagerUnreachableError(PartitionError):
    """A cluster manager did not answer a resource query within its budget.

    Raised by the resilient gathering sweep
    (:func:`repro.partition.available.gather_available_resources_resilient`)
    when a manager times out or errors on every attempt.  Carries the
    cluster name and the number of attempts made so the supervisor's audit
    trail can record the retry history.
    """

    def __init__(self, cluster: str, attempts: int, reason: str = "timeout") -> None:
        super().__init__(
            f"cluster {cluster!r} manager unreachable after {attempts} "
            f"attempt(s) ({reason})"
        )
        self.cluster = cluster
        self.attempts = attempts
        self.reason = reason


class FittingError(ReproError):
    """Cost-function fitting failed (degenerate design matrix, no samples)."""


class MessagingError(ReproError):
    """An MMPS message-layer protocol violation (bad address, closed port)."""


class PeerUnreachableError(MessagingError):
    """A reliable send exhausted its retransmissions without an ack.

    MMPS surfaces the retry history (destination processor, attempt count,
    message id) so a supervisor can distinguish a vanished peer from a
    protocol bug and trigger repartitioning instead of crashing.
    """

    def __init__(self, msg_id: int, dst: int, attempts: int) -> None:
        super().__init__(
            f"message {msg_id} to processor {dst} unacked after {attempts} attempts"
        )
        self.msg_id = msg_id
        self.dst = dst
        self.attempts = attempts
