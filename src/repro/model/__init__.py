"""The data parallel computation model (paper §4).

PDU domains (:class:`PDUSpace`), annotated computation/communication phases
(:class:`ComputationPhase`, :class:`CommunicationPhase`), the program bundle
(:class:`DataParallelComputation`), and the partition vector
(:class:`PartitionVector`) with sum-preserving integer rounding.
"""

from repro.model.computation import DataParallelComputation
from repro.model.pdu import PDUKind, PDUSpace, Region
from repro.model.phases import (
    Annotatable,
    CommunicationPhase,
    ComputationPhase,
    evaluate_annotation,
)
from repro.model.vector import PartitionVector, round_preserving_sum

__all__ = [
    "DataParallelComputation",
    "PDUKind",
    "PDUSpace",
    "Region",
    "Annotatable",
    "CommunicationPhase",
    "ComputationPhase",
    "evaluate_annotation",
    "PartitionVector",
    "round_preserving_sum",
]
