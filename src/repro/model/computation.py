"""The data parallel computation description consumed by the partitioner.

:class:`DataParallelComputation` bundles the problem instance, the PDU
domain, the annotated phases, and the iteration count.  The partitioning
algorithm only consults the *dominant* phases: the computation phase with
the largest computational complexity and the communication phase with the
largest communication complexity (paper §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.errors import AnnotationError
from repro.model.pdu import PDUSpace
from repro.model.phases import (
    Annotatable,
    CommunicationPhase,
    ComputationPhase,
    evaluate_annotation,
)

__all__ = ["DataParallelComputation"]


@dataclass(frozen=True)
class DataParallelComputation:
    """An annotated SPMD program, ready for runtime partitioning.

    Parameters
    ----------
    name:
        Program name (``"STEN-1"``...).
    problem:
        The problem instance handed to annotation callbacks (e.g. an object
        carrying ``N``).
    num_pdus:
        PDU-count annotation (number or callback of the problem).
    computation_phases / communication_phases:
        The annotated phases, in program order.
    cycles:
        Iteration count ``I`` (``T_elapsed = I·T_c + T_startup``).
    """

    name: str
    problem: Any
    num_pdus: Annotatable
    computation_phases: tuple[ComputationPhase, ...]
    communication_phases: tuple[CommunicationPhase, ...]
    cycles: int = 1

    def __init__(
        self,
        name: str,
        problem: Any,
        num_pdus: Annotatable,
        computation_phases: Sequence[ComputationPhase],
        communication_phases: Sequence[CommunicationPhase],
        cycles: int = 1,
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "problem", problem)
        object.__setattr__(self, "num_pdus", num_pdus)
        object.__setattr__(self, "computation_phases", tuple(computation_phases))
        object.__setattr__(self, "communication_phases", tuple(communication_phases))
        object.__setattr__(self, "cycles", int(cycles))
        self._validate()

    def _validate(self) -> None:
        if not self.computation_phases:
            raise AnnotationError(f"{self.name}: needs at least one computation phase")
        if self.cycles < 1:
            raise AnnotationError(f"{self.name}: cycles must be >= 1")
        comp_names = [p.name for p in self.computation_phases]
        if len(set(comp_names)) != len(comp_names):
            raise AnnotationError(f"{self.name}: duplicate computation phase names")
        comm_names = [p.name for p in self.communication_phases]
        if len(set(comm_names)) != len(comm_names):
            raise AnnotationError(f"{self.name}: duplicate communication phase names")
        for phase in self.communication_phases:
            if phase.overlap is not None and phase.overlap not in comp_names:
                raise AnnotationError(
                    f"{self.name}: communication phase {phase.name!r} overlaps "
                    f"unknown computation phase {phase.overlap!r}"
                )

    # -- runtime annotation evaluation -------------------------------------------

    def num_pdus_value(self) -> int:
        """``num_PDUs`` for this problem instance."""
        value = evaluate_annotation(self.num_pdus, self.problem)
        if value < 1 or value != int(value):
            raise AnnotationError(f"{self.name}: num_PDUs must be a positive integer, got {value}")
        return int(value)

    def pdu_space(self) -> PDUSpace:
        """The abstract decomposable domain."""
        return PDUSpace(num_pdus=self.num_pdus_value())

    def dominant_computation_phase(self) -> ComputationPhase:
        """The phase with the largest computational complexity (paper §4)."""
        return max(
            self.computation_phases,
            key=lambda p: p.complexity_value(self.problem),
        )

    def dominant_communication_phase(self) -> Optional[CommunicationPhase]:
        """The phase with the largest communication complexity, if any."""
        if not self.communication_phases:
            return None
        return max(
            self.communication_phases,
            key=lambda p: p.complexity_value(self.problem),
        )

    def overlapped_with_dominant(self) -> bool:
        """Whether the dominant communication overlaps the dominant computation.

        This is what decides whether ``T_overlap`` is non-zero in Eq 6 for
        the dominant-phase estimate (STEN-2 vs STEN-1).
        """
        comm = self.dominant_communication_phase()
        if comm is None or comm.overlap is None:
            return False
        return comm.overlap == self.dominant_computation_phase().name
