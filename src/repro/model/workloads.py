"""Synthetic workload generation for robustness testing.

Random — but *valid* — data parallel computations and networks, used to fuzz
the partitioning pipeline: whatever the annotations and cluster mix, the
partitioner must produce a configuration within bounds, a partition vector
summing exactly to ``num_PDUs``, and an estimate consistent with Eq 4-6.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.benchmarking.costfuncs import CommCostFunction, LinearByteCost
from repro.benchmarking.database import CostDatabase
from repro.hardware.network import HeterogeneousNetwork
from repro.hardware.processor import ProcessorSpec
from repro.model.computation import DataParallelComputation
from repro.model.phases import CommunicationPhase, ComputationPhase
from repro.spmd.topology import Topology

__all__ = ["random_network", "random_cost_database", "random_computation"]

_TOPOLOGIES = (Topology.ONE_D, Topology.RING, Topology.TWO_D, Topology.TREE, Topology.BROADCAST)


def random_network(rng: np.random.Generator) -> HeterogeneousNetwork:
    """A random 1-4 cluster network with era-plausible processor specs."""
    net = HeterogeneousNetwork(seed=int(rng.integers(0, 2**31)))
    n_clusters = int(rng.integers(1, 5))
    for i in range(n_clusters):
        spec = ProcessorSpec(
            name=f"type{i}",
            fp_usec_per_op=float(rng.uniform(0.1, 3.0)),
            int_usec_per_op=float(rng.uniform(0.02, 0.5)),
            comm_speed_factor=float(rng.uniform(0.5, 3.0)),
        )
        net.add_cluster(f"c{i}", spec, count=int(rng.integers(1, 9)))
    net.validate()
    return net


def random_cost_database(
    network: HeterogeneousNetwork, rng: np.random.Generator
) -> CostDatabase:
    """Plausible fitted functions for every cluster/topology/pair."""
    db = CostDatabase()
    names = [c.name for c in network.clusters]
    for name in names:
        scale = float(rng.uniform(0.5, 3.0))
        for topo in _TOPOLOGIES:
            db.add_comm(
                CommCostFunction(
                    cluster=name,
                    topology=str(topo),
                    c1=float(rng.uniform(0.0, 2.0)),
                    c2=float(rng.uniform(0.05, 2.0)) * scale,
                    c3=float(rng.uniform(-0.005, 0.005)),
                    c4=float(rng.uniform(0.0002, 0.005)) * scale,
                )
            )
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            db.add_router(
                LinearByteCost(
                    a, b, "router",
                    intercept_ms=float(rng.uniform(0.0, 2.0)),
                    slope_ms_per_byte=float(rng.uniform(0.0002, 0.003)),
                )
            )
    return db


def random_computation(
    rng: np.random.Generator, *, topology: Optional[Topology] = None
) -> DataParallelComputation:
    """A random annotated computation (1-3 phases each way, maybe overlap)."""
    n_comp = int(rng.integers(1, 4))
    comp_phases = [
        ComputationPhase(
            f"comp{i}",
            complexity=float(rng.uniform(1.0, 10_000.0)),
            op_kind="fp" if rng.random() < 0.8 else "int",
        )
        for i in range(n_comp)
    ]
    n_comm = int(rng.integers(0, 3))
    comm_phases = []
    for i in range(n_comm):
        overlap = None
        if rng.random() < 0.4:
            overlap = comp_phases[int(rng.integers(0, n_comp))].name
        comm_phases.append(
            CommunicationPhase(
                f"comm{i}",
                topology=topology or _TOPOLOGIES[int(rng.integers(0, len(_TOPOLOGIES)))],
                complexity=float(rng.uniform(1.0, 50_000.0)),
                overlap=overlap,
            )
        )
    return DataParallelComputation(
        name="synthetic",
        problem=None,
        num_pdus=int(rng.integers(1, 100_000)),
        computation_phases=comp_phases,
        communication_phases=comm_phases,
        cycles=int(rng.integers(1, 1000)),
    )
