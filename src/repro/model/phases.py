"""Phase annotations: the callback-provided program description (paper §4).

A data parallel computation is a sequence of alternating computation and
communication phases.  The partitioning algorithm never inspects the code —
it consumes *annotations*:

Computation phase
    ``num_PDUs`` and the *computational complexity* (operations executed per
    PDU per cycle).

Communication phase
    the *topology*, the *communication complexity* (bytes per message per
    cycle), and optionally the name of a computation phase the communication
    is overlapped with.

Annotations may be constants or callbacks invoked with the problem instance,
mirroring the paper's runtime callbacks that "may depend on problem
parameters such as the problem size (e.g. N)".
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Optional, Union

from repro.errors import AnnotationError
from repro.hardware.processor import OpKind
from repro.spmd.topology import Topology

__all__ = [
    "Annotatable",
    "evaluate_annotation",
    "purity_checks_enabled",
    "ComputationPhase",
    "CommunicationPhase",
]

#: An annotation value: a number, or a callback of the problem instance.
Annotatable = Union[float, int, Callable[[Any], float]]


def purity_checks_enabled() -> bool:
    """Whether the runtime determinism assertion is switched on.

    Mirrors the static ``callback-purity`` lint rule (``repro lint``): with
    ``REPRO_CHECK_ANNOTATIONS=1`` in the environment, every callback
    annotation is evaluated twice and must return the identical value —
    the partitioner re-evaluates callbacks during search, and replay-based
    fault recovery assumes bit-exact re-execution.  Off by default; the
    double evaluation is cheap but not free.
    """
    return os.environ.get("REPRO_CHECK_ANNOTATIONS", "") not in ("", "0")


def evaluate_annotation(value: Annotatable, problem: Any) -> float:
    """Resolve an annotation to a number, invoking the callback if needed."""
    if callable(value):
        result = value(problem)
        if purity_checks_enabled():
            again = value(problem)
            if again != result:
                raise AnnotationError(
                    f"impure annotation callback: two evaluations returned "
                    f"{result!r} and {again!r}; callbacks must be "
                    f"deterministic (see docs/static-analysis.md, rule "
                    f"callback-purity)"
                )
    else:
        result = value
    try:
        result = float(result)
    except (TypeError, ValueError) as exc:
        raise AnnotationError(f"annotation evaluated to non-numeric {result!r}") from exc
    if result < 0:
        raise AnnotationError(f"annotation evaluated to negative value {result}")
    return result


#: A per-cycle annotation: callback of (problem, cycle index) -> value.
PerCycleCallback = Callable[[Any, int], float]


@dataclass(frozen=True)
class ComputationPhase:
    """One computation phase and its annotations.

    ``complexity`` is the per-PDU, per-cycle operation count; ``op_kind``
    selects which instruction rate (fp/int) applies in Eq 4.  Applications
    with *non-uniform* complexity (the paper's Gaussian elimination) may
    additionally provide ``per_cycle_complexity(problem, cycle)``; the
    estimator then sums exact per-cycle costs for ``T_elapsed`` instead of
    multiplying the average by the cycle count.
    """

    name: str
    complexity: Annotatable
    op_kind: OpKind = "fp"
    per_cycle_complexity: Optional[PerCycleCallback] = None

    def complexity_value(self, problem: Any) -> float:
        """Average operations per PDU per cycle for this problem instance."""
        return evaluate_annotation(self.complexity, problem)

    def complexity_at_cycle(self, problem: Any, cycle: int) -> float:
        """Operations per PDU in one specific cycle (falls back to average)."""
        if self.per_cycle_complexity is None:
            return self.complexity_value(problem)
        value = float(self.per_cycle_complexity(problem, cycle))
        if value < 0:
            raise AnnotationError(
                f"per-cycle complexity negative at cycle {cycle}: {value}"
            )
        return value


@dataclass(frozen=True)
class CommunicationPhase:
    """One communication phase and its annotations.

    ``complexity`` is the bytes transmitted per message per cycle (each task
    sends one message to each topology neighbour per cycle).  ``overlap``
    names the computation phase this phase is overlapped with, if any.
    ``per_cycle_complexity`` optionally gives exact per-cycle message sizes
    for non-uniform communication.
    """

    name: str
    topology: Topology
    complexity: Annotatable
    overlap: Optional[str] = None
    per_cycle_complexity: Optional[PerCycleCallback] = None
    #: The paper's "b ... may depend on A_i in some cases": message size as
    #: a function of (problem, per-processor PDU shares).  A ring all-gather
    #: circulating each task's block is the canonical case — fewer
    #: processors mean bigger blocks.  When provided, the estimator prefers
    #: this over the scalar ``complexity``.
    per_config_complexity: Optional[Callable[[Any, list[float]], float]] = None
    #: How many times the pattern repeats within one cycle.  The paper's
    #: model assumes "a single communication to each neighboring task during
    #: a single cycle"; collectives break that — a ring all-gather runs
    #: ``P-1`` rounds per iteration, an all-reduce two tree passes.  A
    #: number, or a callable of (problem, total processors).
    rounds: Union[float, int, Callable[[Any, int], float]] = 1.0

    def rounds_value(self, problem: Any, total_processors: int) -> float:
        """Pattern repetitions per cycle for a configuration of this size."""
        if callable(self.rounds):
            value = float(self.rounds(problem, total_processors))
        else:
            value = float(self.rounds)
        if value < 0:
            raise AnnotationError(f"rounds evaluated to negative value {value}")
        return value

    def complexity_value(self, problem: Any) -> float:
        """Average bytes per message per cycle for this problem instance."""
        return evaluate_annotation(self.complexity, problem)

    def complexity_for_shares(self, problem: Any, shares: list[float]) -> float:
        """Bytes per message under a concrete decomposition (falls back)."""
        if self.per_config_complexity is None:
            return self.complexity_value(problem)
        value = float(self.per_config_complexity(problem, shares))
        if value < 0:
            raise AnnotationError(
                f"per-config complexity negative for shares {shares}: {value}"
            )
        return value

    def complexity_at_cycle(self, problem: Any, cycle: int) -> float:
        """Bytes per message in one specific cycle (falls back to average)."""
        if self.per_cycle_complexity is None:
            return self.complexity_value(problem)
        value = float(self.per_cycle_complexity(problem, cycle))
        if value < 0:
            raise AnnotationError(
                f"per-cycle complexity negative at cycle {cycle}: {value}"
            )
        return value
