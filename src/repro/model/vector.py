"""The partition vector: PDUs assigned to each processor (paper §4).

``A_i`` = number of PDUs assigned to processor ``p_i``, with the invariant
``Σ A_i = num_PDUs``.  The partitioner computes real-valued balanced shares
(Eq 3); :func:`round_preserving_sum` turns them into integers by largest
remainder, preserving the invariant exactly — this reproduces Table 1's
integer entries (e.g. N=300, P=(6,2): A=(43, 21) with 6·43 + 2·21 = 300).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import PartitionError
from repro.model.pdu import PDUSpace, Region

__all__ = ["PartitionVector", "round_preserving_sum"]


def round_preserving_sum(shares: Sequence[float], total: int) -> list[int]:
    """Round non-negative ``shares`` to integers summing exactly to ``total``.

    Largest-remainder (Hamilton) rounding: floor everything, then hand the
    leftover units to the largest fractional parts.  Ties break toward lower
    index, keeping the result deterministic.
    """
    shares = np.asarray(shares, dtype=float)
    if np.any(shares < 0):
        raise PartitionError(f"negative share in {shares.tolist()}")
    if total < 0:
        raise PartitionError(f"total must be non-negative, got {total}")
    if shares.size == 0:
        if total != 0:
            raise PartitionError("cannot distribute PDUs over zero processors")
        return []
    floors = np.floor(shares).astype(int)
    leftover = total - int(floors.sum())
    if leftover < 0:
        raise PartitionError(
            f"shares {shares.tolist()} already exceed total {total}"
        )
    if leftover > shares.size:
        # Shares must sum to ~total for largest-remainder to make sense.
        raise PartitionError(
            f"shares sum to {shares.sum():.3f}, too far below total {total}"
        )
    remainders = shares - floors
    # argsort is stable; sort by (-remainder, index) for deterministic ties.
    order = np.lexsort((np.arange(shares.size), -remainders))
    result = floors.copy()
    for i in order[:leftover]:
        result[i] += 1
    return result.tolist()


@dataclass(frozen=True)
class PartitionVector:
    """PDU counts per task/processor, in task-rank order."""

    counts: tuple[int, ...]

    def __init__(self, counts: Sequence[int]) -> None:
        object.__setattr__(self, "counts", tuple(int(c) for c in counts))
        if any(c < 0 for c in self.counts):
            raise PartitionError(f"negative PDU count in {self.counts}")

    @classmethod
    def from_shares(cls, shares: Sequence[float], num_pdus: int) -> "PartitionVector":
        """Integer partition vector from real-valued balanced shares."""
        return cls(round_preserving_sum(shares, num_pdus))

    @property
    def total(self) -> int:
        """``Σ A_i`` — must equal the domain's PDU count."""
        return sum(self.counts)

    @property
    def size(self) -> int:
        """Number of tasks/processors in the configuration."""
        return len(self.counts)

    def __getitem__(self, rank: int) -> int:
        return self.counts[rank]

    def __iter__(self):
        return iter(self.counts)

    def regions(self, space: PDUSpace) -> list[Region]:
        """Concrete contiguous regions in the given domain (Fig 2)."""
        return space.regions(self.counts)

    def nonzero_ranks(self) -> list[int]:
        """Ranks that received at least one PDU."""
        return [rank for rank, c in enumerate(self.counts) if c > 0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PartitionVector({list(self.counts)})"
