"""Primitive data units (PDUs) and the decomposable data domain.

The *PDU* is the smallest unit of data decomposition (paper §4): a matrix
row, column, block, or a bag of particles.  The partitioning algorithm
manipulates PDUs purely in the abstract — it only needs their count — while
the implementation maps a :class:`~repro.model.vector.PartitionVector` back
onto concrete regions.  :class:`PDUSpace` provides that mapping for the
common regular cases.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

__all__ = ["PDUKind", "PDUSpace", "Region"]


class PDUKind(str, enum.Enum):
    """What one PDU is, for documentation and region arithmetic."""

    ROW = "row"
    COLUMN = "column"
    BLOCK = "block"
    PARTICLES = "particles"
    ABSTRACT = "abstract"


@dataclass(frozen=True)
class Region:
    """A contiguous run of PDUs owned by one task: ``[start, start+count)``."""

    start: int
    count: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.count < 0:
            raise ValueError(f"invalid region: start={self.start} count={self.count}")

    @property
    def stop(self) -> int:
        """One past the last owned PDU index."""
        return self.start + self.count

    def indices(self) -> range:
        """The PDU indices in this region."""
        return range(self.start, self.stop)


@dataclass(frozen=True)
class PDUSpace:
    """A decomposable data domain of ``num_pdus`` primitive units.

    For a dense ``N x N`` grid decomposed by rows (the paper's stencil),
    ``PDUSpace(num_pdus=N, kind=PDUKind.ROW)``; the partition vector then
    maps directly onto contiguous row blocks (Fig 2).
    """

    num_pdus: int
    kind: PDUKind = PDUKind.ABSTRACT

    def __post_init__(self) -> None:
        if self.num_pdus < 1:
            raise ValueError(f"domain needs at least one PDU, got {self.num_pdus}")

    def regions(self, counts: Sequence[int]) -> list[Region]:
        """Contiguous regions for per-task PDU counts (block decomposition).

        ``counts`` must sum to ``num_pdus`` — the partition-vector invariant
        ``ΣA_i = num_PDUs``.
        """
        total = sum(counts)
        if total != self.num_pdus:
            raise ValueError(
                f"partition covers {total} PDUs but the domain has {self.num_pdus}"
            )
        if any(c < 0 for c in counts):
            raise ValueError(f"negative PDU count in {counts}")
        regions = []
        start = 0
        for count in counts:
            regions.append(Region(start=start, count=count))
            start += count
        return regions
