"""Hierarchical spans: who did what, inside what, from when to when.

A :class:`SpanRecorder` produces :class:`Span` records with parent/child
ids, mirroring the supervisor's structure (``run → epoch → decide``) and
the fast-forward engine's probe/skip segments.  Finished spans land in a
bounded :class:`~repro.telemetry.ringbuf.RingBuffer` (the same
implementation the simulation tracer uses), so a multi-thousand-epoch run
with spans enabled holds memory constant.

Like metrics, spans carry a clock *domain*: the recorder is constructed
with an injectable zero-argument clock (``lambda: clock.now`` /
``lambda: sim.now`` for ``"sim"``, a wall-clock reader for ``"host"``),
and never reads time on its own.  Zero-duration *events* reuse the span
record shape — the audit trail (:mod:`repro.partition.runtime`) is a
consumer of exactly those event spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.telemetry.ringbuf import RingBuffer

__all__ = ["Span", "SpanHandle", "SpanRecorder", "NullSpanRecorder", "NULL_SPANS"]


@dataclass
class Span:
    """One recorded span (or zero-duration event)."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    domain: str = "sim"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """``end - start`` (0.0 while the span is still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """The stable JSON-ready form (the export schema)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "domain": self.domain,
            "attrs": self.attrs,
        }


class SpanHandle:
    """An open span: annotate it, then ``end()`` it (or use ``with``)."""

    __slots__ = ("_recorder", "span")

    def __init__(self, recorder: "SpanRecorder", span: Span) -> None:
        self._recorder = recorder
        self.span = span

    def annotate(self, **attrs: Any) -> "SpanHandle":
        """Attach (or overwrite) attributes on the open span."""
        self.span.attrs.update(attrs)
        return self

    def end(self) -> Span:
        """Close the span, stamping the recorder's clock."""
        self._recorder._finish(self)
        return self.span

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.end()


class SpanRecorder:
    """Records hierarchical spans against one injectable clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time in this
        recorder's domain.  The recorder never reads a clock itself.
    domain:
        ``"sim"`` or ``"host"`` — stamped on every span (see
        :mod:`repro.telemetry.metrics` for the domain rules).
    maxlen:
        Ring-buffer bound on *finished* spans; ``None`` = unbounded.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float],
        *,
        domain: str = "sim",
        maxlen: Optional[int] = None,
    ) -> None:
        from repro.telemetry.metrics import DOMAINS, TelemetryError

        if domain not in DOMAINS:
            raise TelemetryError(
                f"unknown span domain {domain!r} (expected one of {DOMAINS})"
            )
        self._clock = clock
        self.domain = domain
        self._buffer: RingBuffer[Span] = RingBuffer(maxlen=maxlen)
        self._next_id = 1
        #: Open-span stack: the top is the implicit parent of new spans.
        self._stack: list[int] = []

    # -- recording ---------------------------------------------------------------

    def start(
        self, name: str, *, parent: Optional[int] = None, **attrs: Any
    ) -> SpanHandle:
        """Open a span; its parent defaults to the innermost open span."""
        span = Span(
            span_id=self._next_id,
            parent_id=parent if parent is not None else (
                self._stack[-1] if self._stack else None
            ),
            name=name,
            start=self._clock(),
            domain=self.domain,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(span.span_id)
        return SpanHandle(self, span)

    def event(self, name: str, **attrs: Any) -> Span:
        """Record a zero-duration span (start == end == now)."""
        now = self._clock()
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            start=now,
            end=now,
            domain=self.domain,
            attrs=attrs,
        )
        self._next_id += 1
        self._buffer.append(span)
        return span

    def _finish(self, handle: SpanHandle) -> None:
        span = handle.span
        if span.end is not None:
            return  # idempotent: double-end keeps the first stamp
        span.end = self._clock()
        # Pop this span (and anything left open beneath it) off the stack.
        if span.span_id in self._stack:
            while self._stack and self._stack[-1] != span.span_id:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        self._buffer.append(span)

    # -- introspection -----------------------------------------------------------

    @property
    def maxlen(self) -> Optional[int]:
        return self._buffer.maxlen

    @property
    def dropped(self) -> bool:
        """Whether the ring may have evicted finished spans."""
        return self._buffer.dropped

    @property
    def spans(self) -> Tuple[Span, ...]:
        """Finished spans, oldest first (completion order)."""
        return self._buffer.snapshot()

    def by_name(self, name: str) -> Tuple[Span, ...]:
        return tuple(s for s in self._buffer if s.name == name)

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SpanRecorder domain={self.domain} {len(self._buffer)} finished, "
            f"{len(self._stack)} open>"
        )


class _NullHandle:
    """Shared no-op open-span handle."""

    __slots__ = ()
    span = None

    def annotate(self, **attrs: Any) -> "_NullHandle":
        return self

    def end(self) -> None:
        return None

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_HANDLE = _NullHandle()


class NullSpanRecorder:
    """The disabled recorder: every call is a constant-time no-op."""

    enabled = False
    domain = "sim"
    maxlen = None
    dropped = False
    spans: Tuple[Span, ...] = ()

    def start(
        self, name: str, *, parent: Optional[int] = None, **attrs: Any
    ) -> SpanHandle:
        return _NULL_HANDLE  # type: ignore[return-value]

    def event(self, name: str, **attrs: Any) -> Optional[Span]:
        return None

    def by_name(self, name: str) -> Tuple[Span, ...]:
        return ()

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullSpanRecorder>"


#: The shared disabled recorder — the default everywhere.
NULL_SPANS = NullSpanRecorder()
