"""Metrics: counters, gauges, and fixed-bucket histograms in two domains.

The runtime literature this reproduction follows (adaptive self-clustering
repartitioning, cluster-level network observation) treats measurement as a
first-class subsystem: the partitioner is only as good as the numbers the
runtime feeds it.  This module is that subsystem's core — a dependency-free
registry cheap enough to leave on in hot paths.

Design constraints
------------------
* **Hot-path cost**: instrumented code holds the instrument object itself
  (one registry dict lookup at wiring time), so recording is one attribute
  add (`Counter.inc`) or one bisect + two adds (`Histogram.observe`).
* **True no-op when disabled**: :data:`NULL_REGISTRY` hands out shared
  do-nothing instruments; no instrumented module needs an ``if`` around its
  telemetry calls.
* **Two clock domains, never mixed** (enforced by the ``repro lint``
  ``telemetry-determinism`` rule):

  ``sim``
      values derived from the *simulated* world — simulated clocks
      (:class:`~repro.partition.runtime.ManualClock`, ``Simulator.now``),
      message counts, triage outcomes.  Deterministic: identical seeds
      and failure schedules reproduce them byte-for-byte, and the
      fast-forward engine advances them exactly when it skips cycles
      (integer counters only on the cycle hot path — see
      :mod:`repro.sim.fastforward`).
  ``host``
      wall-clock measurements (bench timings, CLI latency) and execution
      mechanics that depend on *how* the run was computed rather than on
      what it computed (probe vs fast-forward counts, memo hit rates).
      Never valid inside the simulation boundary.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "DOMAINS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "TelemetryError",
]

#: The two clock domains a metric may live in.
DOMAINS = ("sim", "host")

#: Default histogram upper bounds (milliseconds-flavoured, but unit-free).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
)

Number = Union[int, float]


class TelemetryError(ValueError):
    """An invalid metric declaration (bad domain, kind clash, bad buckets)."""


class Counter:
    """A monotonically increasing count.  ``inc`` is the hot path."""

    __slots__ = ("name", "domain", "help", "value")
    kind = "counter"

    def __init__(self, name: str, domain: str, help: str = "") -> None:
        self.name = name
        self.domain = domain
        self.help = help
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "domain": self.domain,
            "value": self.value,
        }


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "domain", "help", "value")
    kind = "gauge"

    def __init__(self, name: str, domain: str, help: str = "") -> None:
        self.name = name
        self.domain = domain
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "domain": self.domain,
            "value": self.value,
        }


class Histogram:
    """A fixed-bucket histogram: cumulative-style export, cheap observe.

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches everything beyond the last bound.  ``observe`` costs one
    binary search plus two adds.
    """

    __slots__ = ("name", "domain", "help", "buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        domain: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise TelemetryError(
                f"histogram {name!r} buckets must be non-empty, strictly "
                f"increasing upper bounds, got {buckets!r}"
            )
        self.name = name
        self.domain = domain
        self.help = help
        self.buckets = bounds
        #: Per-bucket observation counts; index len(buckets) is +Inf.
        self.counts = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: Number) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "domain": self.domain,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


Instrument = Union[Counter, Gauge, Histogram]

#: The stable snapshot schema identifier (see docs/observability.md).
SNAPSHOT_SCHEMA = "repro.telemetry/v1"


class MetricsRegistry:
    """Declares and holds instruments; renders stable snapshots.

    Instruments are get-or-create by name: wiring code calls
    ``registry.counter("mmps.messages_sent")`` once and keeps the handle.
    Re-declaring a name with a different kind or domain is an error —
    silent kind drift is how dashboards lie.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    # -- declaration -------------------------------------------------------------

    def _get(
        self, cls: type, name: str, domain: str, help: str, **kwargs: Any
    ) -> Any:
        if domain not in DOMAINS:
            raise TelemetryError(
                f"metric {name!r}: unknown domain {domain!r} (expected one of {DOMAINS})"
            )
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, domain, help=help, **kwargs)
            self._instruments[name] = instrument
            return instrument
        if instrument.kind != cls.kind or instrument.domain != domain:
            raise TelemetryError(
                f"metric {name!r} already declared as {instrument.kind}/"
                f"{instrument.domain}, re-declared as {cls.kind}/{domain}"
            )
        return instrument

    def counter(self, name: str, *, domain: str = "sim", help: str = "") -> Counter:
        return self._get(Counter, name, domain, help)

    def gauge(self, name: str, *, domain: str = "sim", help: str = "") -> Gauge:
        return self._get(Gauge, name, domain, help)

    def histogram(
        self,
        name: str,
        *,
        domain: str = "sim",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._get(Histogram, name, domain, help, buckets=buckets)

    # -- introspection -----------------------------------------------------------

    def instruments(self, domain: Optional[str] = None) -> List[Instrument]:
        """All instruments (of one domain), sorted by name."""
        values = self._instruments.values()
        if domain is not None:
            values = [m for m in values if m.domain == domain]  # type: ignore[assignment]
        return sorted(values, key=lambda m: m.name)

    def counter_values(self, domain: str = "sim") -> Dict[str, Number]:
        """Current counter values of one domain (the fast-forward engine's
        per-cycle delta base)."""
        return {
            m.name: m.value
            for m in self._instruments.values()
            if m.kind == "counter" and m.domain == domain
        }

    def snapshot(
        self, domain: Optional[str] = None, *, stamp: Optional[float] = None
    ) -> Dict[str, Any]:
        """The stable, JSON-ready state of the registry.

        ``domain`` restricts to one clock domain; ``stamp`` records the
        clock reading the snapshot was taken at (the *caller* knows which
        clock governs — the registry never reads one itself, so snapshots
        inside the simulation stay deterministic).
        """
        return {
            "schema": SNAPSHOT_SCHEMA,
            "domain": domain if domain is not None else "all",
            "stamp": stamp,
            "metrics": [m.to_dict() for m in self.instruments(domain)],
        }

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry {len(self._instruments)} instruments>"


class _NullCounter:
    """Shared do-nothing counter: ``inc`` falls straight through."""

    __slots__ = ()
    kind = "counter"
    name = domain = help = ""
    value = 0

    def inc(self, amount: Number = 1) -> None:
        pass

    def to_dict(self) -> Dict[str, Any]:  # pragma: no cover - never exported
        return {}


class _NullGauge:
    __slots__ = ()
    kind = "gauge"
    name = domain = help = ""
    value = 0

    def set(self, value: Number) -> None:
        pass

    def to_dict(self) -> Dict[str, Any]:  # pragma: no cover - never exported
        return {}


class _NullHistogram:
    __slots__ = ()
    kind = "histogram"
    name = domain = help = ""
    buckets: Tuple[float, ...] = ()
    counts: List[int] = []
    sum = 0.0
    count = 0

    def observe(self, value: Number) -> None:
        pass

    def to_dict(self) -> Dict[str, Any]:  # pragma: no cover - never exported
        return {}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """The disabled registry: every declaration returns a shared no-op.

    Instrumented modules take a registry argument defaulting to
    :data:`NULL_REGISTRY` and never branch on enablement — the no-op
    instruments make every record call a constant-time pass.
    """

    enabled = False

    def counter(self, name: str, *, domain: str = "sim", help: str = "") -> Counter:
        return _NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str, *, domain: str = "sim", help: str = "") -> Gauge:
        return _NULL_GAUGE  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        *,
        domain: str = "sim",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return _NULL_HISTOGRAM  # type: ignore[return-value]

    def instruments(self, domain: Optional[str] = None) -> List[Instrument]:
        return []

    def counter_values(self, domain: str = "sim") -> Dict[str, Number]:
        return {}

    def snapshot(
        self, domain: Optional[str] = None, *, stamp: Optional[float] = None
    ) -> Dict[str, Any]:
        return {
            "schema": SNAPSHOT_SCHEMA,
            "domain": domain if domain is not None else "all",
            "stamp": stamp,
            "metrics": [],
        }

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullRegistry>"


#: The shared disabled registry — the default everywhere.
NULL_REGISTRY = NullRegistry()
