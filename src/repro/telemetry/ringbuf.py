"""The bounded ring buffer shared by tracing and telemetry.

Extracted from :mod:`repro.sim.trace` so the simulation tracer and the
telemetry span buffer share one implementation (and one set of semantics):

* ``maxlen=None`` — unbounded; every appended item is retained;
* ``maxlen >= 1`` — a ring: once full, each append evicts the *oldest*
  item in O(1), so a long-running producer holds memory constant;
* ``maxlen=0`` (or negative) — rejected with :class:`ValueError`; a
  buffer that can never hold anything is a configuration bug, not a
  useful degenerate case.

These are exactly the semantics the pre-extraction tracer enforced;
``tests/telemetry/test_ringbuf.py`` pins the match.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Iterator, Optional, TypeVar

__all__ = ["RingBuffer"]

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """A bounded (or unbounded) append-only buffer with O(1) eviction."""

    __slots__ = ("_maxlen", "_items")

    def __init__(self, maxlen: Optional[int] = None) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self._maxlen = maxlen
        self._items: deque[T] = deque(maxlen=maxlen)

    @property
    def maxlen(self) -> Optional[int]:
        """The bound (``None`` = unbounded)."""
        return self._maxlen

    @property
    def dropped(self) -> bool:
        """Whether the buffer has (ever possibly) evicted items."""
        return self._maxlen is not None and len(self._items) == self._maxlen

    def append(self, item: T) -> None:
        """Add ``item``, evicting the oldest retained item when full."""
        self._items.append(item)

    def snapshot(self) -> tuple[T, ...]:
        """All retained items, oldest first."""
        return tuple(self._items)

    def clear(self) -> None:
        """Drop every retained item."""
        self._items.clear()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        # Live-buffer iteration is the documented mutation-unsafe fast
        # path; consumers needing stability take snapshot() tuples.
        return iter(self._items)  # repro: noqa[workspace-escape]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bound = "unbounded" if self._maxlen is None else f"maxlen={self._maxlen}"
        return f"<RingBuffer {len(self._items)} items, {bound}>"
