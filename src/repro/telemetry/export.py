"""Exporters: JSONL stream, Prometheus exposition text, and a summary table.

One stable serialization path for everything the subsystem records:

* :func:`write_jsonl` / :func:`read_jsonl` — a line-delimited stream of
  ``{"kind": "meta" | "metric" | "span", ...}`` records.  This is what
  ``repro … --metrics-out out.jsonl`` writes and what
  ``repro metrics-summary`` reads back.
* :func:`prometheus_text` — the Prometheus text exposition format
  (``# TYPE``/``# HELP`` headers, ``_bucket{le=…}``/``_sum``/``_count``
  for histograms).  :func:`validate_prometheus` is the matching lint,
  used by the CI telemetry-smoke job.
* :func:`summary_table` — the human-facing table the
  ``metrics-summary`` CLI renders.

Everything here consumes the ``to_dict`` forms defined in
:mod:`repro.telemetry.metrics` and :mod:`repro.telemetry.spans`; nothing
reaches into live instruments, so files round-trip losslessly.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

from repro.telemetry.metrics import SNAPSHOT_SCHEMA

__all__ = [
    "write_jsonl",
    "dump_jsonl",
    "read_jsonl",
    "prometheus_text",
    "validate_prometheus",
    "summary_table",
]


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def write_jsonl(
    stream: TextIO,
    snapshot: Dict[str, Any],
    spans: Sequence[Dict[str, Any]] = (),
    *,
    meta: Optional[Dict[str, Any]] = None,
) -> int:
    """Write one meta line, then one line per metric and per span.

    ``snapshot`` is a :meth:`MetricsRegistry.snapshot` dict; ``spans`` are
    :meth:`Span.to_dict` dicts.  Returns the number of lines written.
    Keys are sorted so identical states serialize to identical bytes —
    the determinism suites compare these files directly.
    """
    header: Dict[str, Any] = {
        "kind": "meta",
        "schema": snapshot.get("schema", SNAPSHOT_SCHEMA),
        "domain": snapshot.get("domain", "all"),
        "stamp": snapshot.get("stamp"),
    }
    if meta:
        header.update(meta)
    lines = 1
    stream.write(json.dumps(header, sort_keys=True) + "\n")
    # Payloads are nested under their own key: a metric dict carries its own
    # "kind" ("counter"/…) which must not collide with the line discriminator.
    for metric in snapshot.get("metrics", []):
        stream.write(
            json.dumps({"kind": "metric", "metric": metric}, sort_keys=True) + "\n"
        )
        lines += 1
    for span in spans:
        stream.write(
            json.dumps({"kind": "span", "span": span}, sort_keys=True) + "\n"
        )
        lines += 1
    return lines


def dump_jsonl(
    path: str,
    snapshot: Dict[str, Any],
    spans: Sequence[Dict[str, Any]] = (),
    *,
    meta: Optional[Dict[str, Any]] = None,
) -> int:
    """:func:`write_jsonl` to a file path."""
    with open(path, "w", encoding="utf-8") as fh:
        return write_jsonl(fh, snapshot, spans, meta=meta)


def read_jsonl(path: str) -> Dict[str, Any]:
    """Parse a ``--metrics-out`` file back into its three record groups.

    Returns ``{"meta": dict, "metrics": [dict], "spans": [dict]}``.
    Unknown ``kind`` values raise — a file this module did not write is
    more usefully rejected than half-rendered.
    """
    meta: Dict[str, Any] = {}
    metrics: List[Dict[str, Any]] = []
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            record = json.loads(raw)
            kind = record.pop("kind", None)
            if kind == "meta":
                meta = record
            elif kind == "metric":
                metrics.append(record["metric"])
            elif kind == "span":
                spans.append(record["span"])
            else:
                raise ValueError(
                    f"{path}:{lineno}: unknown telemetry record kind {kind!r}"
                )
    return {"meta": meta, "metrics": metrics, "spans": spans}


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _prom_name(name: str) -> str:
    """``mmps.bytes_sent`` → ``mmps_bytes_sent`` (dots are invalid)."""
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _prom_value(value: Any) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(metrics: Iterable[Dict[str, Any]]) -> str:
    """Render metric dicts in the Prometheus text exposition format.

    Counters and gauges become single samples with a ``domain`` label;
    histograms expand into cumulative ``_bucket{le=…}`` samples plus
    ``_sum`` and ``_count``.
    """
    out: List[str] = []
    for metric in sorted(metrics, key=lambda m: m["name"]):
        name = _prom_name(metric["name"])
        kind = metric["kind"]
        label = f'{{domain="{metric["domain"]}"}}'
        out.append(f"# TYPE {name} {kind}")
        if kind in ("counter", "gauge"):
            out.append(f"{name}{label} {_prom_value(metric['value'])}")
        elif kind == "histogram":
            cumulative = 0
            for bound, count in zip(metric["buckets"], metric["counts"]):
                cumulative += count
                out.append(
                    f'{name}_bucket{{domain="{metric["domain"]}",'
                    f'le="{_prom_value(float(bound))}"}} {cumulative}'
                )
            cumulative += metric["counts"][len(metric["buckets"])]
            out.append(
                f'{name}_bucket{{domain="{metric["domain"]}",le="+Inf"}} {cumulative}'
            )
            out.append(f"{name}_sum{label} {_prom_value(metric['sum'])}")
            out.append(f"{name}_count{label} {metric['count']}")
        else:
            raise ValueError(f"unknown metric kind {kind!r} for {name}")
    return "\n".join(out) + ("\n" if out else "")


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>\+Inf|-Inf|NaN|[0-9eE.+-]+)$"
)


def validate_prometheus(text: str) -> List[str]:
    """Lint a Prometheus exposition body; returns problems (empty = clean).

    Checks the subset of the format this module emits: every ``# TYPE``
    names a valid metric and known kind, every sample line parses, every
    sample follows a ``# TYPE`` for its family, and histogram families
    carry ``_sum``/``_count``/a ``+Inf`` bucket.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    samples: Dict[str, List[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {lineno}: malformed TYPE comment: {line!r}")
                continue
            _, _, name, kind = parts
            if not _NAME_OK.match(name):
                problems.append(f"line {lineno}: invalid metric name {name!r}")
            if kind not in ("counter", "gauge", "histogram"):
                problems.append(f"line {lineno}: unknown metric kind {kind!r}")
            typed[name] = kind
            continue
        if line.startswith("#"):
            continue  # HELP or other comments: fine
        match = _SAMPLE.match(line)
        if not match:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        sample = match.group("name")
        family = re.sub(r"_(bucket|sum|count)$", "", sample)
        owner = sample if sample in typed else family
        if owner not in typed:
            problems.append(
                f"line {lineno}: sample {sample!r} has no preceding # TYPE"
            )
            continue
        samples.setdefault(owner, []).append(line)
    for name, kind in typed.items():
        family_samples = samples.get(name, [])
        if not family_samples:
            problems.append(f"metric {name!r} declared but has no samples")
            continue
        if kind == "histogram":
            joined = "\n".join(family_samples)
            for suffix in (f"{name}_bucket", f"{name}_sum", f"{name}_count"):
                if suffix not in joined:
                    problems.append(f"histogram {name!r} missing {suffix} samples")
            if 'le="+Inf"' not in joined:
                problems.append(f"histogram {name!r} missing the +Inf bucket")
    return problems


# ---------------------------------------------------------------------------
# Summary table (the metrics-summary CLI)
# ---------------------------------------------------------------------------

def _format_value(metric: Dict[str, Any]) -> str:
    if metric["kind"] == "histogram":
        count = metric["count"]
        if count == 0:
            return "count=0"
        mean = metric["sum"] / count
        return f"count={count} sum={metric['sum']:g} mean={mean:g}"
    value = metric["value"]
    return f"{value:g}" if isinstance(value, float) else str(value)


def summary_table(data: Dict[str, Any]) -> str:
    """Render a parsed ``--metrics-out`` file as a text report."""
    meta = data.get("meta", {})
    metrics = data.get("metrics", [])
    spans = data.get("spans", [])
    lines: List[str] = []
    lines.append(
        f"telemetry snapshot  schema={meta.get('schema', '?')}  "
        f"domain={meta.get('domain', '?')}  stamp={meta.get('stamp')}"
    )
    for key in sorted(k for k in meta if k not in ("schema", "domain", "stamp")):
        lines.append(f"  {key}: {meta[key]}")
    lines.append("")
    if metrics:
        rows: List[Tuple[str, str, str, str]] = [
            (m["name"], m["kind"], m["domain"], _format_value(m))
            for m in sorted(metrics, key=lambda m: (m["domain"], m["name"]))
        ]
        widths = [
            max(len(header), *(len(row[i]) for row in rows))
            for i, header in enumerate(("metric", "kind", "domain", "value"))
        ]
        header = ("metric", "kind", "domain", "value")
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    else:
        lines.append("(no metrics)")
    lines.append("")
    if spans:
        by_name: Dict[str, List[Dict[str, Any]]] = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        lines.append(f"spans ({len(spans)} finished)")
        name_w = max(len(n) for n in by_name)
        for name in sorted(by_name):
            group = by_name[name]
            durations = [
                s["end"] - s["start"] for s in group if s.get("end") is not None
            ]
            total = sum(durations)
            lines.append(
                f"  {name.ljust(name_w)}  n={len(group):<5d} "
                f"total={total:g} mean={total / len(group):g}"
            )
    else:
        lines.append("(no spans)")
    return "\n".join(lines) + "\n"
