"""Unified telemetry: metrics, spans, and exporters for the whole stack.

The subsystem is a *leaf* package — it imports nothing from the rest of
``repro``, so every layer (``mmps``, ``sim``, ``partition``, ``cli``) can
depend on it without cycles.  The usual entry point is a
:class:`Telemetry` bundle::

    from repro.telemetry import Telemetry

    telemetry = Telemetry.for_sim(lambda: clock.now)
    mmps = MMPS(network, metrics=telemetry.metrics)
    ...
    telemetry.dump("out.jsonl", stamp=clock.now)

Disabled telemetry is the default everywhere: modules accept
``metrics=NULL_REGISTRY`` / ``spans=NULL_SPANS`` and record through
shared no-op instruments, so the hot path pays one no-op method call
(see ``benchmarks/test_bench_telemetry_overhead.py`` for the gate).

Domain rules (sim vs host clocks) are documented in
:mod:`repro.telemetry.metrics` and ``docs/observability.md``, and
enforced by the ``telemetry-determinism`` rule of ``repro lint``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Union

from repro.telemetry.export import (
    dump_jsonl,
    prometheus_text,
    read_jsonl,
    summary_table,
    validate_prometheus,
    write_jsonl,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    DOMAINS,
    NULL_REGISTRY,
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    TelemetryError,
)
from repro.telemetry.ringbuf import RingBuffer
from repro.telemetry.spans import (
    NULL_SPANS,
    NullSpanRecorder,
    Span,
    SpanHandle,
    SpanRecorder,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DOMAINS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPANS",
    "NULL_TELEMETRY",
    "NullRegistry",
    "NullSpanRecorder",
    "RingBuffer",
    "SNAPSHOT_SCHEMA",
    "Span",
    "SpanHandle",
    "SpanRecorder",
    "Telemetry",
    "TelemetryError",
    "dump_jsonl",
    "prometheus_text",
    "read_jsonl",
    "summary_table",
    "validate_prometheus",
    "write_jsonl",
]


@dataclass
class Telemetry:
    """One registry + one span recorder, handed around as a unit."""

    metrics: Union[MetricsRegistry, NullRegistry] = field(
        default_factory=lambda: NULL_REGISTRY
    )
    spans: Union[SpanRecorder, NullSpanRecorder] = field(
        default_factory=lambda: NULL_SPANS
    )

    @property
    def enabled(self) -> bool:
        return bool(self.metrics.enabled or self.spans.enabled)

    @classmethod
    def for_sim(
        cls, clock: Callable[[], float], *, span_maxlen: Optional[int] = None
    ) -> "Telemetry":
        """An enabled bundle recording in the **sim** domain.

        ``clock`` must read *simulated* time (``ManualClock``/``Simulator``)
        — never the wall clock; that is what keeps snapshots deterministic.
        """
        return cls(
            metrics=MetricsRegistry(),
            spans=SpanRecorder(clock, domain="sim", maxlen=span_maxlen),
        )

    def snapshot(
        self, domain: Optional[str] = None, *, stamp: Optional[float] = None
    ) -> Dict[str, Any]:
        return self.metrics.snapshot(domain, stamp=stamp)

    def dump(
        self,
        path: str,
        *,
        domain: Optional[str] = None,
        stamp: Optional[float] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Write the JSONL export (metrics snapshot + finished spans)."""
        return dump_jsonl(
            path,
            self.snapshot(domain, stamp=stamp),
            [span.to_dict() for span in self.spans.spans],
            meta=meta,
        )


#: The shared disabled bundle — the default everywhere.
NULL_TELEMETRY = Telemetry()
