"""Unit conventions and conversion helpers.

The library uses one consistent set of units, chosen to match the paper:

====================  =======================================================
Quantity              Unit
====================  =======================================================
simulated time        milliseconds (``float``)
message / data size   bytes (``int``)
network bandwidth     bits per second
instruction rate      microseconds **per operation** (the paper's ``S_i``;
                      *smaller is faster*)
computational work    abstract operations (integer or floating point)
====================  =======================================================

Keeping the instruction rate in µs/op mirrors the paper's Section 6 where
``S_i ≈ 0.3`` µs for the Sparc2 and ``0.6`` µs for the IPC, and makes
Eq 4 (``T_comp = S_i · complexity · A_i``) read exactly as printed once the
microsecond→millisecond factor is applied.
"""

from __future__ import annotations

__all__ = [
    "MS_PER_SECOND",
    "US_PER_MS",
    "BITS_PER_BYTE",
    "usec_to_msec",
    "msec_to_usec",
    "seconds_to_msec",
    "msec_to_seconds",
    "transmission_time_ms",
    "ops_time_ms",
]

MS_PER_SECOND = 1_000.0
US_PER_MS = 1_000.0
BITS_PER_BYTE = 8


def usec_to_msec(usec: float) -> float:
    """Convert microseconds to milliseconds."""
    return usec / US_PER_MS


def msec_to_usec(msec: float) -> float:
    """Convert milliseconds to microseconds."""
    return msec * US_PER_MS


def seconds_to_msec(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * MS_PER_SECOND


def msec_to_seconds(msec: float) -> float:
    """Convert milliseconds to seconds."""
    return msec / MS_PER_SECOND


def transmission_time_ms(nbytes: int, bandwidth_bps: float) -> float:
    """Time to clock ``nbytes`` onto a link of ``bandwidth_bps``.

    Pure serialization delay; propagation and per-frame overheads are modelled
    separately by :class:`repro.hardware.EthernetSegment`.
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
    return seconds_to_msec(nbytes * BITS_PER_BYTE / bandwidth_bps)


def ops_time_ms(ops: float, usec_per_op: float) -> float:
    """Time for ``ops`` operations at ``usec_per_op`` (the paper's Eq 4 core).

    ``usec_per_op`` is the paper's ``S_i``: microseconds per operation,
    smaller meaning a faster processor.
    """
    if ops < 0:
        raise ValueError(f"ops must be non-negative, got {ops}")
    if usec_per_op <= 0:
        raise ValueError(f"usec_per_op must be positive, got {usec_per_op}")
    return usec_to_msec(ops * usec_per_op)
