"""Unit conventions and conversion helpers.

The library uses one consistent set of units, chosen to match the paper:

====================  =======================================================
Quantity              Unit
====================  =======================================================
simulated time        milliseconds (``float``)
message / data size   bytes (``int``)
network bandwidth     bits per second
instruction rate      microseconds **per operation** (the paper's ``S_i``;
                      *smaller is faster*)
computational work    abstract operations (integer or floating point)
====================  =======================================================

Keeping the instruction rate in µs/op mirrors the paper's Section 6 where
``S_i ≈ 0.3`` µs for the Sparc2 and ``0.6`` µs for the IPC, and makes
Eq 4 (``T_comp = S_i · complexity · A_i``) read exactly as printed once the
microsecond→millisecond factor is applied.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

__all__ = [
    "MS_PER_SECOND",
    "US_PER_MS",
    "BITS_PER_BYTE",
    "usec_to_msec",
    "msec_to_usec",
    "seconds_to_msec",
    "msec_to_seconds",
    "transmission_time_ms",
    "ops_time_ms",
    "Unit",
    "UNIT_SYMBOLS",
    "SUFFIX_ATOMS",
    "NAME_UNITS",
    "CONSTANT_UNITS",
    "FUNCTION_SIGNATURES",
]

MS_PER_SECOND = 1_000.0
US_PER_MS = 1_000.0
BITS_PER_BYTE = 8


def usec_to_msec(usec: float) -> float:
    """Convert microseconds to milliseconds."""
    return usec / US_PER_MS


def msec_to_usec(msec: float) -> float:
    """Convert milliseconds to microseconds."""
    return msec * US_PER_MS


def seconds_to_msec(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * MS_PER_SECOND


def msec_to_seconds(msec: float) -> float:
    """Convert milliseconds to seconds."""
    return msec / MS_PER_SECOND


def transmission_time_ms(nbytes: int, bandwidth_bps: float) -> float:
    """Time to clock ``nbytes`` onto a link of ``bandwidth_bps``.

    Pure serialization delay; propagation and per-frame overheads are modelled
    separately by :class:`repro.hardware.EthernetSegment`.
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
    return seconds_to_msec(nbytes * BITS_PER_BYTE / bandwidth_bps)


def ops_time_ms(ops: float, usec_per_op: float) -> float:
    """Time for ``ops`` operations at ``usec_per_op`` (the paper's Eq 4 core).

    ``usec_per_op`` is the paper's ``S_i``: microseconds per operation,
    smaller meaning a faster processor.
    """
    if ops < 0:
        raise ValueError(f"ops must be non-negative, got {ops}")
    if usec_per_op <= 0:
        raise ValueError(f"usec_per_op must be positive, got {usec_per_op}")
    return usec_to_msec(ops * usec_per_op)


# ---------------------------------------------------------------------------
# Machine-readable unit conventions (consumed by ``repro.analysis``)
# ---------------------------------------------------------------------------
#
# ``repro lint``'s unit-consistency rule infers physical units through
# arithmetic from the tables below, so the conventions documented in the
# module docstring are enforceable rather than advisory.  A unit is a
# mapping of base symbol -> integer exponent: ``{"ms": 1}`` is milliseconds,
# ``{"bits": 1, "s": -1}`` is bits per second, ``{}`` is dimensionless.

#: A physical unit as a base-symbol -> exponent mapping.
Unit = Mapping[str, int]

#: The base symbols the conventions table is written in.
UNIT_SYMBOLS: Tuple[str, ...] = ("ms", "us", "s", "bytes", "bits", "ops", "pdu")

#: Identifier suffix atoms: the trailing ``_``-separated token of a name
#: determines its unit (``elapsed_ms``, ``bandwidth_bps``, ``nbytes``).
#: ``X_per_Y`` names compose two atoms (``usec_per_op`` -> us/op).
SUFFIX_ATOMS: Dict[str, Unit] = {
    "ms": {"ms": 1},
    "msec": {"ms": 1},
    "us": {"us": 1},
    "usec": {"us": 1},
    "s": {"s": 1},
    "sec": {"s": 1},
    "seconds": {"s": 1},
    "bytes": {"bytes": 1},
    "byte": {"bytes": 1},
    "bits": {"bits": 1},
    "bit": {"bits": 1},
    "bps": {"bits": 1, "s": -1},
    "ops": {"ops": 1},
    "op": {"ops": 1},
    "pdu": {"pdu": 1},
    "pdus": {"pdu": 1},
}

#: Whole identifiers whose unit is fixed regardless of suffix tokens.
NAME_UNITS: Dict[str, Unit] = {
    "nbytes": {"bytes": 1},
    "mtu": {"bytes": 1},
}

#: Module-level conversion constants and their units.  Multiplying by
#: ``US_PER_MS`` (us/ms) converts ms -> us; the checker cancels exponents.
CONSTANT_UNITS: Dict[str, Unit] = {
    "MS_PER_SECOND": {"ms": 1, "s": -1},
    "US_PER_MS": {"us": 1, "ms": -1},
    "BITS_PER_BYTE": {"bits": 1, "bytes": -1},
}

#: Conversion/cost helpers: function name -> (positional parameter units,
#: parameter names, return unit).  The checker validates call-site argument
#: units and propagates the return unit.
FUNCTION_SIGNATURES: Dict[str, Tuple[Tuple[Unit, ...], Tuple[str, ...], Unit]] = {
    "usec_to_msec": (({"us": 1},), ("usec",), {"ms": 1}),
    "msec_to_usec": (({"ms": 1},), ("msec",), {"us": 1}),
    "seconds_to_msec": (({"s": 1},), ("seconds",), {"ms": 1}),
    "msec_to_seconds": (({"ms": 1},), ("msec",), {"s": 1}),
    "transmission_time_ms": (
        ({"bytes": 1}, {"bits": 1, "s": -1}),
        ("nbytes", "bandwidth_bps"),
        {"ms": 1},
    ),
    "ops_time_ms": (
        ({"ops": 1}, {"us": 1, "ops": -1}),
        ("ops", "usec_per_op"),
        {"ms": 1},
    ),
}
