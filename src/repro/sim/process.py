"""Generator-based simulated processes.

A *process* is a Python generator that ``yield``-s :class:`~repro.sim.events.Event`
instances; the kernel resumes the generator with the event's value once the
event fires (or throws the event's exception into the generator if the event
failed).  The :class:`Process` object is itself an :class:`Event` that
succeeds with the generator's return value, so processes can wait on each
other simply by yielding them.

Processes may also be :meth:`interrupted <Process.interrupt>`: an
:class:`Interrupt` is thrown into the generator at the current simulated
time, abandoning whatever event it was waiting on — the building block for
timeouts, cancellation, and failure injection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import ReproError, SimulationError
from repro.sim.events import PENDING, Event, _ensure_event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

__all__ = ["Process", "ProcessGenerator", "Interrupt"]

#: The type a process body must have: a generator yielding events.
ProcessGenerator = Generator[Event, Any, Any]


class Interrupt(ReproError):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries whatever the interrupter passed (a reason string, an
    object, ``None``).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(f"process interrupted (cause={cause!r})")
        self.cause = cause


class Process(Event):
    """A running simulated activity; also an event others may wait on.

    Created via :meth:`repro.sim.Simulator.process`.  The wrapped generator is
    started at the current simulated time (via a zero-delay event, so creation
    itself never advances the generator synchronously).
    """

    __slots__ = ("_gen", "name", "_waiting_on", "_wait_token")

    def __init__(self, sim: "Simulator", gen: ProcessGenerator, name: str | None = None) -> None:
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise SimulationError(f"Process needs a generator, got {gen!r}")
        super().__init__(sim)
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Event | None = None
        self._wait_token = 0
        start = Event(sim)
        self._register(start)
        start.succeed(None)

    @property
    def is_alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return self._state == PENDING

    # -- wait registration -------------------------------------------------------

    def _register(self, target: Event) -> None:
        """Subscribe to ``target`` with a staleness token.

        An interrupt bumps the token, so a wake-up from an abandoned wait
        (the event firing later) is ignored instead of double-resuming.
        """
        token = self._wait_token
        target.add_callback(lambda ev: self._resume(ev, token))

    # -- execution ------------------------------------------------------------------

    def _resume(self, trigger: Event, token: int) -> None:
        """Advance the generator as far as it will go at this instant."""
        if token != self._wait_token or not self.is_alive:
            return  # stale wake-up after an interrupt, or already finished
        self._waiting_on = None
        event: Event | None = trigger
        while event is not None:
            if event.ok:
                action, payload = "send", event.value
            else:
                event.defuse()
                action, payload = "throw", event.value
            target = self._step(action, payload)
            if target is None:
                return
            if target.processed:
                event = target  # already done: loop immediately with it
                continue
            self._waiting_on = target
            self._register(target)
            return

    def _step(self, action: str, payload: Any) -> Optional[Event]:
        """One send/throw into the generator; returns the next awaited event."""
        try:
            if action == "send":
                target = self._gen.send(payload)
            else:
                target = self._gen.throw(payload)
        except StopIteration as stop:
            self.succeed(stop.value)
            return None
        except BaseException as exc:
            # The process body raised: the Process event fails.  If nobody
            # waits on this process, Event._process re-raises, surfacing
            # crashes by default.
            self.fail(exc)
            return None
        target = _ensure_event(target)
        if target.sim is not self.sim:
            raise SimulationError(
                f"process {self.name!r} yielded an event from another simulator"
            )
        return target

    # -- interruption -----------------------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process abandons the event it was waiting on (a later firing of
        that event is ignored) and resumes inside its ``except Interrupt``
        handler — or fails with the interrupt if it has none.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        self._wait_token += 1  # invalidate the pending wake-up
        self._waiting_on = None
        exc = Interrupt(cause)
        shim = Event(self.sim)
        shim.add_callback(lambda _ev: self._deliver_interrupt(exc))
        shim.succeed(None)

    def _deliver_interrupt(self, exc: Interrupt) -> None:
        if not self.is_alive:
            return  # finished before the interrupt was processed
        target = self._step("throw", exc)
        if target is None:
            return
        if target.processed:
            # Resume immediately with the already-completed event.
            self._resume(target, self._wait_token)
            return
        self._waiting_on = target
        self._register(target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} state={self._state}>"
