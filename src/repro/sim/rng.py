"""Deterministic named random streams.

Every stochastic subsystem (ethernet jitter, datagram loss, processor load
fluctuation) draws from its own :class:`numpy.random.Generator`, derived from
a single root seed and a stable stream name.  Subsystems therefore stay
decoupled: adding draws to one stream never perturbs another, and a fixed
root seed reproduces a run bit-for-bit.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, name-addressed random generators.

    Parameters
    ----------
    root_seed:
        Seed for the whole simulation.  Streams for the same
        ``(root_seed, name)`` pair are identical across runs.

    Examples
    --------
    >>> streams = RandomStreams(42)
    >>> a = streams.get("ethernet.segment0")
    >>> b = streams.get("ethernet.segment0")
    >>> a is b
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # Stable cross-run derivation: hash the name into spawn keys.
            name_key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.root_seed, spawn_key=(name_key,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of the parent's."""
        child_key = zlib.crc32(name.encode("utf-8"))
        return RandomStreams(root_seed=(self.root_seed * 1_000_003 + child_key) % (2**63))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams seed={self.root_seed} streams={sorted(self._streams)}>"
