"""Queued resources for the kernel: semaphores and item stores.

Two primitives cover everything the network substrate needs:

* :class:`Resource` — a counted semaphore with a FIFO wait queue.  A shared
  ethernet channel is ``Resource(sim, capacity=1)``: transmissions serialize,
  and contention (the paper's "offered load is linear in p") emerges from the
  queueing delay seen by ``p`` stations offering frames concurrently.
* :class:`Store` — an unbounded FIFO of items with blocking ``get``; used for
  mailboxes and the router's forwarding queue.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Optional

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """A counted resource with FIFO granting.

    ``request()`` returns an event that succeeds when a unit is granted; the
    holder must call ``release()`` exactly once per grant.  Units are granted
    strictly in request order, which keeps channel arbitration fair and the
    simulation deterministic.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted units."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._waiters)

    def request(self) -> Event:
        """Ask for one unit; the returned event fires when granted."""
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return one unit, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            # Hand the unit straight to the next waiter; _in_use unchanged.
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO of items with blocking retrieval.

    ``put`` never blocks.  ``get`` returns an event that fires with the oldest
    item once one is available; pending gets are served in request order.
    An optional ``filter`` on ``get`` retrieves the oldest *matching* item —
    used by mailboxes for source-selective receives.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[tuple[Event, Optional[Callable[[Any], bool]]]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, satisfying the oldest compatible pending get."""
        self._items.append(item)
        self._dispatch()

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        """An event firing with the oldest item satisfying ``predicate``."""
        ev = Event(self.sim)
        self._getters.append((ev, predicate))
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        """Match waiting getters against stored items (FIFO on both sides)."""
        made_progress = True
        while made_progress and self._getters and self._items:
            made_progress = False
            for gi, (ev, predicate) in enumerate(self._getters):
                idx = self._find(predicate)
                if idx is None:
                    continue
                item = self._items[idx]
                del self._items[idx]
                del self._getters[gi]
                ev.succeed(item)
                made_progress = True
                break

    def _find(self, predicate: Optional[Callable[[Any], bool]]) -> Optional[int]:
        if predicate is None:
            return 0 if self._items else None
        for i, item in enumerate(self._items):
            if predicate(item):
                return i
        return None
