"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence on the simulated timeline.  It
starts *pending*, becomes *triggered* when given an outcome
(:meth:`Event.succeed` / :meth:`Event.fail`), and becomes *processed* once the
kernel has run its callbacks.  Processes (see :mod:`repro.sim.process`) wait
on events by ``yield``-ing them.

The design follows the classic generator-coroutine kernel style (SimPy,
adapted and trimmed): callbacks are invoked *by the kernel* in timestamp
order, never synchronously from ``succeed``, which keeps causality intact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.kernel import Simulator

__all__ = ["Event", "Timeout", "AllOf", "AnyOf", "PENDING", "TRIGGERED", "PROCESSED"]

PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"


class Event:
    """A one-shot outcome on the simulated timeline.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.kernel.Simulator`.

    Notes
    -----
    * ``succeed``/``fail`` may be called exactly once; a second call raises
      :class:`~repro.errors.SimulationError`.
    * Callbacks added after the event has been processed are scheduled to run
      at the current simulated time (zero-delay), preserving "you never miss
      an event you subscribe to" semantics needed by processes that yield an
      already-completed event.
    """

    __slots__ = ("sim", "_state", "_ok", "_value", "_callbacks", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._state = PENDING
        self._ok: bool = True
        self._value: Any = None
        self._callbacks: list[Callable[["Event"], None]] = []
        # A failed event whose exception nobody consumed should crash the
        # simulation; waiting on the event "defuses" it.
        self._defused = False

    # -- state inspection ---------------------------------------------------

    @property
    def state(self) -> str:
        """One of ``pending`` / ``triggered`` / ``processed``."""
        return self._state

    @property
    def triggered(self) -> bool:
        """Whether an outcome has been assigned (callbacks may not have run)."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """Whether the kernel has already run this event's callbacks."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event succeeded. Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception.

        Raises
        ------
        SimulationError
            If the event has not been triggered yet.
        """
        if self._state == PENDING:
            raise SimulationError("event value read before it was triggered")
        return self._value

    # -- outcome assignment --------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Assign a success outcome and enqueue callback processing."""
        self._trigger(ok=True, value=value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Assign a failure outcome carrying ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._trigger(ok=False, value=exception)
        return self

    def _trigger(self, *, ok: bool, value: Any) -> None:
        if self._state != PENDING:
            raise SimulationError(f"event triggered twice: {self!r}")
        self._state = TRIGGERED
        self._ok = ok
        self._value = value
        self.sim._enqueue(0.0, self)

    # -- callbacks ------------------------------------------------------------

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback is scheduled to run
        at the current simulated time instead of being silently dropped.
        """
        if self._state == PROCESSED:
            self.sim._enqueue_call(0.0, fn, self)
        else:
            self._callbacks.append(fn)

    def _process(self) -> None:
        """Kernel hook: run callbacks. Called exactly once, in time order."""
        if self._state == PROCESSED:  # pragma: no cover - kernel invariant
            raise SimulationError(f"event processed twice: {self!r}")
        self._state = PROCESSED
        callbacks, self._callbacks = self._callbacks, []
        if not self._ok and not callbacks and not self._defused:
            # Nobody is listening to a failure: surface it loudly.
            raise self._value
        for fn in callbacks:
            fn(self)

    def defuse(self) -> None:
        """Mark a failure as handled so an unwaited failure doesn't crash."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} state={self._state} ok={self._ok}>"


class Timeout(Event):
    """An event that succeeds after a fixed simulated delay.

    Created via :meth:`repro.sim.Simulator.timeout`; the delay must be
    non-negative.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = float(delay)
        self._state = TRIGGERED
        self._ok = True
        self._value = value
        sim._enqueue(self.delay, self)


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("_events", "_pending_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = tuple(events)
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._pending_count = len(self._events)
        if not self._events:
            self.succeed(())
            return
        for ev in self._events:
            ev.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _child_failed(self, event: Event) -> None:
        event.defuse()
        if self._state == PENDING:
            self.fail(event.value)


class AllOf(_Condition):
    """Succeeds when *all* child events have succeeded.

    The value is a tuple of the children's values in construction order.
    Fails as soon as any child fails.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if not event.ok:
            self._child_failed(event)
            return
        self._pending_count -= 1
        if self._pending_count == 0 and self._state == PENDING:
            self.succeed(tuple(ev.value for ev in self._events))


class AnyOf(_Condition):
    """Succeeds when the *first* child event succeeds.

    The value is a ``(event, value)`` pair identifying the winner.  Fails only
    if a child fails before any succeeds.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if not event.ok:
            self._child_failed(event)
            return
        if self._state == PENDING:
            self.succeed((event, event.value))


def _ensure_event(obj: Any) -> Event:
    """Validate that a process yielded an :class:`Event`."""
    if not isinstance(obj, Event):
        raise SimulationError(
            f"process yielded {obj!r}; processes may only yield Event instances"
        )
    return obj


# Re-exported for the process module without creating an import cycle.
ensure_event: Optional[Callable[[Any], Event]] = _ensure_event
