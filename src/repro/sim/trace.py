"""Lightweight event tracing for simulations.

A :class:`Tracer` collects ``(time, category, message, fields)`` records.
Tracing is off by default and costs a single attribute check per call, so
instrumentation can stay in hot paths.  Categories let tests assert on a
single subsystem's activity (e.g. only ``"router"`` records).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = ["TraceRecord", "Tracer", "NULL_TRACER"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace line: what happened, when, and structured details."""

    time: float
    category: str
    message: str
    fields: dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        """Human-readable single-line rendering."""
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.time:12.4f} ms] {self.category:<12} {self.message}" + (
            f" ({extra})" if extra else ""
        )


class Tracer:
    """Collects :class:`TraceRecord` entries when enabled.

    Parameters
    ----------
    enabled:
        Master switch; when ``False`` (default) :meth:`record` is a no-op.
    max_records:
        Optional bound; the oldest records are dropped once exceeded, so a
        long benchmark run with tracing accidentally on cannot exhaust memory.
    clock:
        Zero-argument callable returning the current simulated time; usually
        ``lambda: sim.now``.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        *,
        enabled: bool = False,
        max_records: Optional[int] = None,
    ) -> None:
        self._clock = clock
        self.enabled = enabled
        self.max_records = max_records
        self._records: list[TraceRecord] = []

    def record(self, category: str, message: str, **fields: Any) -> None:
        """Append a record if tracing is enabled."""
        if not self.enabled:
            return
        self._records.append(TraceRecord(self._clock(), category, message, fields))
        if self.max_records is not None and len(self._records) > self.max_records:
            del self._records[: len(self._records) - self.max_records]

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        """All collected records, oldest first."""
        return tuple(self._records)

    def by_category(self, category: str) -> Iterator[TraceRecord]:
        """Iterate over records of a single category."""
        return (r for r in self._records if r.category == category)

    def clear(self) -> None:
        """Drop all collected records."""
        self._records.clear()


def _zero_clock() -> float:
    return 0.0


#: A disabled tracer usable as a default argument.
NULL_TRACER = Tracer(_zero_clock, enabled=False)
