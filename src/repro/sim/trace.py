"""Lightweight event tracing for simulations.

A :class:`Tracer` collects ``(time, category, message, fields)`` records.
Tracing is off by default and costs a single attribute check per call, so
instrumentation can stay in hot paths.  Categories let tests assert on a
single subsystem's activity (e.g. only ``"router"`` records).

Bounded tracing uses a ring buffer
(:class:`~repro.telemetry.ringbuf.RingBuffer`, shared with the telemetry
span recorder): once full, each append drops the oldest record in O(1), so
a multi-thousand-cycle run with tracing accidentally enabled holds memory
constant instead of growing without bound (and without the O(n) slice-delete
the old list-based bound paid on every overflowing append).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.telemetry.ringbuf import RingBuffer

__all__ = ["TraceRecord", "Tracer", "NULL_TRACER"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace line: what happened, when, and structured details."""

    time: float
    category: str
    message: str
    fields: dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        """Human-readable single-line rendering."""
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.time:12.4f} ms] {self.category:<12} {self.message}" + (
            f" ({extra})" if extra else ""
        )


class Tracer:
    """Collects :class:`TraceRecord` entries when enabled.

    Parameters
    ----------
    enabled:
        Master switch; when ``False`` (default) :meth:`record` is a no-op.
    maxlen:
        Optional ring-buffer bound; with it set, only the newest ``maxlen``
        records are retained — the oldest are dropped in O(1) per append —
        so long runs with tracing enabled cannot exhaust memory.
        ``max_records`` is accepted as a backwards-compatible alias.
    clock:
        Zero-argument callable returning the current simulated time; usually
        ``lambda: sim.now``.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        *,
        enabled: bool = False,
        maxlen: Optional[int] = None,
        max_records: Optional[int] = None,
    ) -> None:
        if maxlen is not None and max_records is not None and maxlen != max_records:
            raise ValueError(
                f"maxlen={maxlen} conflicts with its alias max_records={max_records}"
            )
        bound = maxlen if maxlen is not None else max_records
        self._clock = clock
        self.enabled = enabled
        # RingBuffer owns the semantics (maxlen=None unbounded, < 1 rejected).
        self._records: RingBuffer[TraceRecord] = RingBuffer(maxlen=bound)

    @property
    def maxlen(self) -> Optional[int]:
        """The ring-buffer bound (``None`` = unbounded)."""
        return self._records.maxlen

    #: Backwards-compatible alias for :attr:`maxlen`.
    max_records = maxlen

    @property
    def dropped(self) -> bool:
        """Whether the ring buffer has (ever possibly) evicted records."""
        return self._records.dropped

    def record(self, category: str, message: str, **fields: Any) -> None:
        """Append a record if tracing is enabled."""
        if not self.enabled:
            return
        self._records.append(TraceRecord(self._clock(), category, message, fields))

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        """All retained records, oldest first."""
        return self._records.snapshot()

    def by_category(self, category: str) -> Iterator[TraceRecord]:
        """Iterate over records of a single category."""
        return (r for r in self._records if r.category == category)

    def clear(self) -> None:
        """Drop all collected records."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)


def _zero_clock() -> float:
    return 0.0


#: A disabled tracer usable as a default argument.
NULL_TRACER = Tracer(_zero_clock, enabled=False)
