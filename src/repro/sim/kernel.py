"""The discrete-event simulation kernel.

:class:`Simulator` owns the simulated clock and a priority queue of pending
event processings.  Entries at equal timestamps are processed in insertion
(FIFO) order, which makes simulations deterministic for a fixed seed and
construction order — a property the cost-function fitting relies on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator

__all__ = ["Simulator"]


class Simulator:
    """A deterministic discrete-event simulator with a millisecond clock.

    Examples
    --------
    >>> sim = Simulator()
    >>> def hello():
    ...     yield sim.timeout(5.0)
    ...     return sim.now
    >>> proc = sim.process(hello())
    >>> sim.run()
    >>> proc.value
    5.0
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0  # insertion counter for FIFO tie-breaking
        self._running = False

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    # -- event construction ----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending :class:`Event` owned by this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` ms from now with ``value``."""
        return Timeout(self, delay, value)

    def process(self, gen: ProcessGenerator, name: str | None = None) -> Process:
        """Start a generator as a simulated process."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event succeeding when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event succeeding when the first of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- scheduling internals ---------------------------------------------------

    def _enqueue(self, delay: float, event: Event, priority: int = 0) -> None:
        if delay < 0:
            raise SimulationError(f"negative scheduling delay: {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def _enqueue_call(self, delay: float, fn: Callable[[Event], None], event: Event) -> None:
        """Schedule a bare callback (used for late subscriptions)."""
        shim = Event(self)
        shim.add_callback(lambda _ev: fn(event))
        shim._state = "triggered"
        shim._ok = True
        shim._value = None
        self._enqueue(delay, shim)

    # -- execution ----------------------------------------------------------------

    def step(self) -> None:
        """Process the single next event. Raises ``IndexError`` when empty."""
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - heap invariant
            raise SimulationError("time ran backwards")
        self._now = when
        event._process()

    def peek(self) -> float:
        """Timestamp of the next pending event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    @property
    def quiescent(self) -> bool:
        """Whether nothing is pending: no events queued, no run in progress."""
        return not self._queue and not self._running

    def rewind(self, to: float = 0.0) -> None:
        """Move the clock backwards to ``to`` — allowed only while quiescent.

        With an empty event queue the simulation's future is independent of
        the absolute clock value (delays are state-, not time-, dependent),
        so rewinding is a pure frame translation.  The fast-forward engine
        (:mod:`repro.sim.fastforward`) relies on this to run every probed
        cycle from the same canonical clock origin, which is what makes
        cycle deltas bitwise reproducible and extrapolation exact.
        """
        if not self.quiescent:
            raise SimulationError(
                f"rewind() with {len(self._queue)} pending event(s)"
                + (" during run()" if self._running else "")
            )
        if to < 0:
            raise SimulationError(f"cannot rewind to negative time {to}")
        self._now = to

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, or until simulated time ``until``.

        With ``until`` given, the clock is advanced to exactly ``until`` even
        if no event fires at that instant, mirroring the common kernel
        convention and making repeated bounded runs composable.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        try:
            if until is None:
                while self._queue:
                    self.step()
                return
            if until < self._now:
                raise SimulationError(f"run(until={until}) is in the past (now={self._now})")
            while self._queue and self._queue[0][0] <= until:
                self.step()
            self._now = until
        finally:
            self._running = False

    def run_process(self, proc_or_gen: Process | ProcessGenerator) -> Any:
        """Run the simulation until the given process completes; return its value.

        Raises
        ------
        DeadlockError
            If the event queue drains while the process is still pending.
        BaseException
            Re-raises the process's own exception if its body raised.
        """
        proc = proc_or_gen if isinstance(proc_or_gen, Process) else self.process(proc_or_gen)
        proc.defuse()
        if self._running:
            raise SimulationError("run_process() called re-entrantly")
        self._running = True
        try:
            while self._queue and not proc.triggered:
                self.step()
            # Drain same-timestamp stragglers so the process gets processed.
            while self._queue and self._queue[0][0] <= self._now:
                self.step()
        finally:
            self._running = False
        if not proc.triggered:
            raise DeadlockError(
                f"simulation deadlocked at t={self._now:.6f} ms waiting for "
                f"process {proc.name!r}"
            )
        if not proc.ok:
            raise proc.value
        return proc.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now:.6f} ms, {len(self._queue)} queued>"
