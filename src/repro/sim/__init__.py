"""Discrete-event simulation kernel.

The substrate on which the heterogeneous workstation network is simulated:
a deterministic event queue (:class:`Simulator`), generator-based processes
(:class:`Process`), composable events (:class:`Event`, :class:`Timeout`,
:class:`AllOf`, :class:`AnyOf`), queued resources (:class:`Resource`,
:class:`Store`), named random streams (:class:`RandomStreams`) and tracing
(:class:`Tracer`).

The kernel is intentionally tiny — the paper's method needs only FIFO
causality, blocking waits, and determinism for repeatable benchmarking.
"""

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.failures import (
    FailureSchedule,
    NodeFailure,
    TimedFailure,
    apply_failure_schedule,
)
from repro.sim.fastforward import (
    CycleDelta,
    FastForwardEngine,
    FastForwardReport,
    ProcessorTotals,
    SegmentTotals,
)
from repro.sim.kernel import Simulator
from repro.sim.process import Interrupt, Process, ProcessGenerator
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomStreams
from repro.sim.trace import NULL_TRACER, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Timeout",
    "Simulator",
    "Interrupt",
    "Process",
    "ProcessGenerator",
    "Resource",
    "Store",
    "RandomStreams",
    "FailureSchedule",
    "NodeFailure",
    "TimedFailure",
    "apply_failure_schedule",
    "CycleDelta",
    "FastForwardEngine",
    "FastForwardReport",
    "ProcessorTotals",
    "SegmentTotals",
    "Tracer",
    "TraceRecord",
    "NULL_TRACER",
]
