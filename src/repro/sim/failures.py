"""Failure and load injection: deterministic churn schedules for nodes.

The paper assumes a fixed processor pool for the lifetime of a computation;
availability churn (a workstation owner rebooting, a node dropping off the
segment, a competing job landing on a shared workstation) is exactly the
scenario class its §7 future work defers.  This module provides the
injection side of that story:

* :class:`FailureSchedule` — an epoch-indexed fail-stop plan, either
  explicit (``fail_at``) or drawn from a seeded geometric MTBF model
  (``from_mtbf``) so experiments are reproducible without wall-clock
  randomness;
* :class:`LoadSchedule` — the non-fatal twin: an epoch-indexed external
  *load* plan (flapping bursts, rolling hot spots, sustained steps) that
  slows nodes without killing them — the churn the adaptive
  repartitioning layer exists for;
* :func:`apply_failure_schedule` — the simulated-timeline twin of
  :func:`repro.apps.stencil_dynamic.apply_load_schedule`: at ``at_ms`` the
  node is marked dead and (when an :class:`~repro.mmps.system.MMPS`
  instance is given) its endpoint vanishes from the message layer, so
  in-flight reliable sends surface :class:`~repro.errors.PeerUnreachableError`.

The supervision side — detecting the loss and repartitioning around it —
lives in :mod:`repro.partition.runtime`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.sim.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.network import HeterogeneousNetwork
    from repro.mmps.system import MMPS

__all__ = [
    "NodeFailure",
    "TimedFailure",
    "FailureSchedule",
    "NodeLoad",
    "LoadSchedule",
    "apply_failure_schedule",
]


@dataclass(frozen=True)
class NodeFailure:
    """Processor ``proc_id`` crashes at the *start* of epoch ``at_epoch``.

    Fail-stop semantics: the node does none of that epoch's work, answers
    no manager queries, and never comes back on its own.
    """

    at_epoch: int
    proc_id: int


@dataclass(frozen=True)
class TimedFailure:
    """Processor ``proc_id`` crashes at simulated time ``at_ms``."""

    at_ms: float
    proc_id: int


@dataclass(frozen=True)
class FailureSchedule:
    """An immutable epoch-indexed fail-stop plan."""

    events: tuple[NodeFailure, ...] = ()

    @classmethod
    def fail_at(cls, epoch: int, proc_ids: Iterable[int]) -> "FailureSchedule":
        """Crash the given processors at the start of ``epoch``."""
        return cls(tuple(NodeFailure(epoch, pid) for pid in proc_ids))

    @classmethod
    def from_mtbf(
        cls,
        proc_ids: Sequence[int],
        *,
        mtbf_epochs: float,
        horizon_epochs: int,
        seed: int = 0,
        max_failures: Optional[int] = None,
    ) -> "FailureSchedule":
        """Draw one geometric time-to-failure per node (seeded, reproducible).

        ``mtbf_epochs`` is the mean number of epochs a node survives; draws
        beyond ``horizon_epochs`` mean the node outlives the run.  With
        ``max_failures`` set, only the earliest failures are kept — handy
        to guarantee a quorum survives a short demo run.
        """
        if mtbf_epochs <= 0:
            raise ValueError(f"mtbf_epochs must be positive, got {mtbf_epochs}")
        rng = RandomStreams(seed).get("failures.mtbf")
        p = min(1.0, 1.0 / mtbf_epochs)
        draws = rng.geometric(p, size=len(proc_ids))
        events = [
            NodeFailure(int(epoch), pid)
            for pid, epoch in zip(proc_ids, draws)
            if epoch < horizon_epochs
        ]
        events.sort(key=lambda e: (e.at_epoch, e.proc_id))
        if max_failures is not None:
            events = events[:max_failures]
        return cls(tuple(events))

    def failures_at(self, epoch: int) -> tuple[NodeFailure, ...]:
        """Failures firing exactly at the start of ``epoch``."""
        return tuple(e for e in self.events if e.at_epoch == epoch)

    def failed_by(self, epoch: int) -> frozenset[int]:
        """Processors dead once epoch ``epoch`` starts (inclusive)."""
        return frozenset(e.proc_id for e in self.events if e.at_epoch <= epoch)

    def __bool__(self) -> bool:
        return bool(self.events)


@dataclass(frozen=True)
class NodeLoad:
    """Processor ``proc_id``'s external load becomes ``load`` at the *start*
    of epoch ``at_epoch`` (``load=0.0`` clears a previous burst).

    Non-fatal: the node keeps computing, just slower — the slowdown
    signature :func:`~repro.partition.dynamic.classify_epoch` keys on.
    """

    at_epoch: int
    proc_id: int
    load: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.load < 1.0:
            raise ValueError(f"load must be in [0, 1), got {self.load}")


@dataclass(frozen=True)
class LoadSchedule:
    """An immutable epoch-indexed external-load plan.

    The constructors cover the three canonical churn shapes of the
    adaptive-repartitioning benchmark: short flapping bursts (debounced
    away by hysteresis), a rolling hot spot (handled by migrate-k), and a
    sustained step (where the full-search fallback is the right answer).
    """

    events: tuple[NodeLoad, ...] = ()

    @classmethod
    def step(cls, proc_id: int, *, at_epoch: int, load: float) -> "LoadSchedule":
        """Sustained external load on one node from ``at_epoch`` onward."""
        return cls((NodeLoad(at_epoch, proc_id, load),))

    @classmethod
    def flapping(
        cls,
        proc_ids,
        *,
        load: float,
        period_epochs: int,
        burst_epochs: int,
        horizon_epochs: int,
        start_epoch: int = 0,
    ) -> "LoadSchedule":
        """Bursts: ``burst_epochs`` of load at the start of each period.

        ``proc_ids`` is one processor or a sequence the bursts rotate
        through (a different workstation picks up the competing job each
        time — each burst hits a node a drop-the-victim policy still has
        in its decomposition).
        """
        if not 0 < burst_epochs < period_epochs:
            raise ValueError(
                f"need 0 < burst_epochs < period_epochs, got "
                f"{burst_epochs} / {period_epochs}"
            )
        victims = [proc_ids] if isinstance(proc_ids, int) else list(proc_ids)
        if not victims:
            raise ValueError("flapping schedule needs at least one processor")
        events: list[NodeLoad] = []
        for i, start in enumerate(range(start_epoch, horizon_epochs, period_epochs)):
            victim = victims[i % len(victims)]
            events.append(NodeLoad(start, victim, load))
            clear = start + burst_epochs
            if clear < horizon_epochs:
                events.append(NodeLoad(clear, victim, 0.0))
        return cls(tuple(events))

    @classmethod
    def rolling(
        cls,
        proc_ids: Sequence[int],
        *,
        load: float,
        dwell_epochs: int,
        horizon_epochs: int,
        start_epoch: int = 0,
    ) -> "LoadSchedule":
        """A hot spot that moves node-to-node every ``dwell_epochs``."""
        if not proc_ids:
            raise ValueError("rolling schedule needs at least one processor")
        if dwell_epochs < 1:
            raise ValueError(f"dwell_epochs must be >= 1, got {dwell_epochs}")
        events: list[NodeLoad] = []
        previous: Optional[int] = None
        for i, start in enumerate(range(start_epoch, horizon_epochs, dwell_epochs)):
            victim = proc_ids[i % len(proc_ids)]
            if previous is not None and previous != victim:
                events.append(NodeLoad(start, previous, 0.0))
            events.append(NodeLoad(start, victim, load))
            previous = victim
        return cls(tuple(events))

    def changes_at(self, epoch: int) -> tuple[NodeLoad, ...]:
        """Load changes applying exactly at the start of ``epoch``.

        Clears (``load=0.0``) are ordered before sets so a hot spot moving
        between nodes in one epoch nets out correctly even on the same node.
        """
        changes = [e for e in self.events if e.at_epoch == epoch]
        changes.sort(key=lambda e: (e.load > 0.0, e.proc_id))
        return tuple(changes)

    def __bool__(self) -> bool:
        return bool(self.events)


def apply_failure_schedule(
    network: "HeterogeneousNetwork",
    events: Sequence[TimedFailure],
    *,
    mmps: Optional["MMPS"] = None,
) -> None:
    """Install a process that crashes nodes on the simulated timeline.

    Each event marks the processor dead (so availability queries exclude
    it) and, when ``mmps`` is given, removes its endpoint from the message
    layer — in-flight reliable sends to it then exhaust their retries and
    raise :class:`~repro.errors.PeerUnreachableError`.
    """

    def crasher():
        for event in sorted(events, key=lambda e: e.at_ms):
            delay = event.at_ms - network.sim.now
            if delay > 0:
                yield network.sim.timeout(delay)
            network.processor(event.proc_id).fail()
            if mmps is not None:
                mmps.fail_processor(event.proc_id)
            network.tracer.record("failure", "crash", proc=event.proc_id)

    if events:
        network.sim.process(crasher(), name="failure-schedule")
