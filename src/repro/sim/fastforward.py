"""Steady-state fast-forward execution of cycle-structured SPMD programs.

The paper's evaluation runs STEN-1/STEN-2 for hundreds of identical
iterations; the self-clustering simulation-partitioning literature
(arXiv:1610.01295) observes that steady-state phases are exactly where
event-level fidelity buys nothing.  This engine exploits that: it executes a
data-parallel program one *cycle* at a time, detects when consecutive cycles
are provably identical, and then advances whole windows of cycles without
touching the event queue.

How exactness is achieved
-------------------------
Event-level cycle times are **not** extrapolatable from a free-running
simulation: rank skew bleeds across cycle boundaries and changes segment
contention, so cycle durations drift.  The engine therefore runs
*cycle-synchronously*: every cycle starts from the same canonical state —

* the event queue fully drained (the :attr:`Simulator.quiescent` invariant),
* the clock rewound to ``t = 0`` (:meth:`Simulator.rewind`, a pure frame
  translation),
* per-cycle accumulators (task compute/comm time, segment busy time) zeroed,
  with the engine owning the cross-cycle totals.

Under a fixed environment the simulator is deterministic, so two probed
cycles from identical canonical state produce **bitwise identical** deltas.
The engine simulates cycles until two consecutive deltas compare equal
(the first acts as the warm-up cycle), then fast-forwards: per skipped
cycle it performs exactly the same one-add-per-accumulator bookkeeping the
event path performs, so clock, per-processor times, and message/byte
counters are bit-exact by construction — integer counters may equivalently
be advanced with one multiplication, which is exact.

Fallback triggers (each one invalidates the learned delta and forces fresh
event-level probes):

* a scheduled failure firing (the cycle around a
  :class:`~repro.sim.failures.FailureSchedule` event is always simulated),
* any environment change — processor load/liveness, topology revision,
  loss injection, unreliable mode, segment jitter, tracing enabled,
* a probe whose measurements :func:`~repro.partition.dynamic.classify_epoch`
  would triage (dead ranks, or an imbalance the measured Eq-3 rebalance
  would act on): the engine never skips cycles a supervisor would want to
  observe.

The engine draws no randomness and reads no wall clock — all time comes
from the injected simulator, so runs are reproducible by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Protocol, Sequence, runtime_checkable

from repro.errors import SimulationError
from repro.sim.failures import FailureSchedule
from repro.sim.process import ProcessGenerator
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "CycleProgram",
    "ProcessorCycle",
    "SegmentCycle",
    "CycleDelta",
    "ProcessorTotals",
    "SegmentTotals",
    "FastForwardReport",
    "FastForwardEngine",
]


@runtime_checkable
class CycleProgram(Protocol):
    """What the engine drives: a program expressed as repeatable cycles.

    ``contexts`` are live :class:`~repro.spmd.task.TaskContext`-compatible
    objects (rank, processor, endpoint, compute/comm accumulators);
    ``cycle_bodies`` yields *fresh* one-cycle generators, one per rank.
    """

    @property
    def contexts(self) -> Sequence[Any]: ...

    def cycle_bodies(self) -> list[ProcessGenerator]: ...

    def pdu_counts(self) -> list[int]: ...

    def handle_failure(self, proc_ids: Sequence[int]) -> None: ...


@dataclass(frozen=True)
class ProcessorCycle:
    """One processor's exact per-cycle delta (canonical-state measurement)."""

    proc_id: int
    compute_ms: float
    comm_ms: float
    completion_ms: float  #: when this rank's cycle body finished (cycle frame)
    messages_sent: int
    messages_received: int
    bytes_sent: int
    bytes_received: int
    datagrams_sent: int
    acks_sent: int
    retransmissions: int


@dataclass(frozen=True)
class SegmentCycle:
    """One segment's exact per-cycle delta."""

    name: str
    busy_ms: float
    frames: int
    bytes: int


@dataclass(frozen=True)
class CycleDelta:
    """Everything one canonical cycle changes, bit-for-bit comparable."""

    clock_ms: float  #: cycle completion time (last rank, full queue drain)
    processors: tuple[ProcessorCycle, ...]
    segments: tuple[SegmentCycle, ...]
    #: Sim-domain telemetry counter deltas of this cycle, sorted by name.
    #: Part of the dataclass equality, so steady-state confirmation (two
    #: consecutive bitwise-equal deltas) covers the registry too.
    metrics: tuple[tuple[str, Any], ...] = ()


@dataclass
class ProcessorTotals:
    """Cross-cycle accumulated per-processor figures."""

    compute_ms: float = 0.0
    comm_ms: float = 0.0
    completion_ms: float = 0.0  #: sum of per-cycle completion times
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    datagrams_sent: int = 0
    acks_sent: int = 0
    retransmissions: int = 0


@dataclass
class SegmentTotals:
    """Cross-cycle accumulated per-segment figures."""

    busy_ms: float = 0.0
    frames: int = 0
    bytes: int = 0


@dataclass
class FastForwardReport:
    """Outcome of one engine run.

    Two runs of the same program agree on :meth:`parity_signature`
    regardless of mode — that equality is what the parity suite asserts.
    """

    mode: str
    cycles: int
    probed_cycles: int
    fast_forwarded_cycles: int
    clock_ms: float
    per_processor: dict[int, ProcessorTotals]
    per_segment: dict[str, SegmentTotals]
    #: Fast-forwarded windows as (first_cycle, length).
    windows: list[tuple[int, int]] = field(default_factory=list)
    #: Why the engine (re)entered event-level simulation, in order.
    fallbacks: list[str] = field(default_factory=list)

    def parity_signature(self) -> tuple:
        """The mode-independent observables: clock, per-proc, per-segment."""
        return (
            self.cycles,
            self.clock_ms,
            tuple(sorted(self.per_processor.items(), key=lambda kv: kv[0])),
            tuple(sorted(self.per_segment.items(), key=lambda kv: kv[0])),
        )


class FastForwardEngine:
    """Runs a :class:`CycleProgram`, skipping provably-identical cycles.

    Parameters
    ----------
    mmps:
        The message system (and through it the network and simulator) the
        program communicates over.
    failures:
        Epoch-indexed fail-stop plan; epochs map to cycles via
        ``cycles_per_epoch``.  Failure cycles are always event-simulated.
    cycles_per_epoch:
        How many computation cycles one supervisor epoch spans.
    imbalance_threshold:
        Passed to :func:`~repro.partition.dynamic.classify_epoch` for the
        triage gate.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` bundle.  Sim-domain
        counters incremented inside probed cycles (the MMPS transport
        counters) are *learned* as part of the per-cycle delta and advanced
        exactly across skipped windows — integer deltas only; a
        non-integer sim-counter delta blocks steady-state confirmation, so
        the engine never skips over float counter arithmetic it could not
        reproduce bitwise.  The engine's own mechanics (probe vs skip
        counts, fallback reasons) are host-domain: they describe *how* the
        run was computed and legitimately differ between modes.
    """

    def __init__(
        self,
        mmps,
        *,
        failures: Optional[FailureSchedule] = None,
        cycles_per_epoch: int = 1,
        imbalance_threshold: float = 1.25,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if cycles_per_epoch < 1:
            raise SimulationError(
                f"cycles_per_epoch must be >= 1, got {cycles_per_epoch}"
            )
        self.mmps = mmps
        self.network = mmps.network
        self.sim = mmps.sim
        self.failures = failures or FailureSchedule()
        self.cycles_per_epoch = cycles_per_epoch
        self.imbalance_threshold = imbalance_threshold
        self.telemetry = telemetry or NULL_TELEMETRY
        registry = self.telemetry.metrics
        #: Total cycles advanced — mode-independent, hence sim-domain.
        self._m_cycles = registry.counter(
            "ff.cycles", help="computation cycles advanced (probed or skipped)"
        )
        # Engine mechanics are legitimately mode-dependent (a fast run
        # probes less), so they live in the host domain even though this
        # module is inside the simulation boundary.
        self._m_probed = registry.counter(  # repro: noqa[telemetry-determinism]
            "ff.probed_cycles", domain="host", help="cycles event-simulated"
        )
        self._m_skipped = registry.counter(  # repro: noqa[telemetry-determinism]
            "ff.fast_forwarded_cycles", domain="host", help="cycles skipped"
        )
        self._m_windows = registry.counter(  # repro: noqa[telemetry-determinism]
            "ff.windows", domain="host", help="fast-forward windows taken"
        )
        self._m_fallbacks = registry.counter(  # repro: noqa[telemetry-determinism]
            "ff.fallbacks", domain="host", help="falls back to event simulation"
        )
        # Steady-state learning: the last probed delta, and the delta
        # confirmed by two consecutive bitwise-equal probes.
        self._last_delta: Optional[CycleDelta] = None
        self._ff_delta: Optional[CycleDelta] = None
        self._ff_signature: Optional[tuple] = None

    # -- environment gating ------------------------------------------------------

    def _segments(self):
        return [cluster.segment for cluster in self.network.clusters]

    def _environment_signature(self, program: CycleProgram) -> tuple:
        """Everything timing depends on besides the program's own structure.

        Compared before every fast-forward window: any difference (a load
        change, a node death, a topology edit, tracing switched on) drops
        the engine back to event-level probing.
        """
        return (
            self.mmps.loss_rate,
            self.mmps.reliable,
            self.network.tracer.enabled,
            self.network.fabric.version,
            tuple(seg.params.jitter for seg in self._segments()),
            tuple(
                (ctx.processor.proc_id, ctx.processor.load, ctx.processor.alive)
                for ctx in program.contexts
            ),
        )

    def _steady_environment(self) -> Optional[str]:
        """``None`` when deltas can repeat bitwise; else the blocking reason."""
        if self.mmps.loss_rate > 0.0:
            return "loss-injection"
        if not self.mmps.reliable:
            return "unreliable-transport"
        if self.network.tracer.enabled:
            return "tracing-enabled"
        if any(seg.params.jitter > 0.0 for seg in self._segments()):
            return "segment-jitter"
        return None

    def _would_triage(self, delta: CycleDelta, program: CycleProgram) -> Optional[str]:
        """The supervisor action this cycle's measurements would trigger.

        Mirrors :class:`~repro.partition.runtime.PartitionRuntime`: dead
        ranks always repartition; an imbalance only matters when the
        measured Eq-3 rebalance would actually change the decomposition
        (a well-partitioned heterogeneous configuration shows unequal
        per-PDU times forever — that is its steady state, not a trigger).
        """
        # Imported here: repro.partition sits above repro.sim in the layer
        # graph, and a module-level import would cycle through
        # repro.sim.__init__ during package initialization.
        from repro.partition.dynamic import classify_epoch, rebalance_counts

        counts = program.pdu_counts()
        per_pdu: list[Optional[float]] = []
        for proc_cycle, count in zip(delta.processors, counts):
            if count <= 0:
                return "empty-rank"
            alive = any(
                ctx.processor.proc_id == proc_cycle.proc_id and ctx.processor.alive
                for ctx in program.contexts
            )
            per_pdu.append(proc_cycle.compute_ms / count if alive else None)
        health = classify_epoch(per_pdu, threshold=self.imbalance_threshold)
        if health.dead:
            return "node-loss"
        if health.imbalanced:
            live = [t for t in per_pdu if t is not None]
            if list(rebalance_counts(counts, live)) != list(counts):
                return "slowdown-rebalance"
        return None

    # -- failure schedule --------------------------------------------------------

    def _failure_cycles(self) -> dict[int, tuple[int, ...]]:
        """Cycle index -> proc_ids crashing at that cycle's start."""
        out: dict[int, list[int]] = {}
        for event in self.failures.events:
            cycle = event.at_epoch * self.cycles_per_epoch
            out.setdefault(cycle, []).append(event.proc_id)
        return {c: tuple(sorted(pids)) for c, pids in out.items()}

    # -- bookkeeping -------------------------------------------------------------

    @staticmethod
    def _accumulate(report: FastForwardReport, delta: CycleDelta) -> None:
        """Fold one cycle into the totals: exactly one add per accumulator."""
        report.clock_ms += delta.clock_ms
        for pc in delta.processors:
            totals = report.per_processor.setdefault(pc.proc_id, ProcessorTotals())
            totals.compute_ms += pc.compute_ms
            totals.comm_ms += pc.comm_ms
            totals.completion_ms += pc.completion_ms
            totals.messages_sent += pc.messages_sent
            totals.messages_received += pc.messages_received
            totals.bytes_sent += pc.bytes_sent
            totals.bytes_received += pc.bytes_received
            totals.datagrams_sent += pc.datagrams_sent
            totals.acks_sent += pc.acks_sent
            totals.retransmissions += pc.retransmissions
        for sc in delta.segments:
            totals_s = report.per_segment.setdefault(sc.name, SegmentTotals())
            totals_s.busy_ms += sc.busy_ms
            totals_s.frames += sc.frames
            totals_s.bytes += sc.bytes

    def _fast_forward(self, report: FastForwardReport, delta: CycleDelta, k: int) -> None:
        """Advance ``k`` identical cycles without simulating them.

        Integer counters advance with one exact multiplication; float
        accumulators are advanced by ``k`` repeated adds — the *same*
        operation sequence the event path performs — so the result is
        bitwise identical to simulating each cycle.  Learned sim-domain
        telemetry counter deltas are integers by the steady-state gate
        (``non-integer-telemetry`` blocks confirmation), so ``k × delta``
        is exact there too.
        """
        registry = self.telemetry.metrics
        for name, per_cycle in delta.metrics:
            if per_cycle:
                registry.counter(name).inc(k * per_cycle)
        for _ in range(k):
            report.clock_ms += delta.clock_ms
        for pc in delta.processors:
            totals = report.per_processor.setdefault(pc.proc_id, ProcessorTotals())
            for _ in range(k):
                totals.compute_ms += pc.compute_ms
                totals.comm_ms += pc.comm_ms
                totals.completion_ms += pc.completion_ms
            totals.messages_sent += k * pc.messages_sent
            totals.messages_received += k * pc.messages_received
            totals.bytes_sent += k * pc.bytes_sent
            totals.bytes_received += k * pc.bytes_received
            totals.datagrams_sent += k * pc.datagrams_sent
            totals.acks_sent += k * pc.acks_sent
            totals.retransmissions += k * pc.retransmissions
        for sc in delta.segments:
            totals_s = report.per_segment.setdefault(sc.name, SegmentTotals())
            for _ in range(k):
                totals_s.busy_ms += sc.busy_ms
            totals_s.frames += k * sc.frames
            totals_s.bytes += k * sc.bytes

    def _invalidate(self) -> None:
        self._last_delta = None
        self._ff_delta = None
        self._ff_signature = None

    @staticmethod
    def _nonint_telemetry(delta: CycleDelta) -> Optional[str]:
        """Blocker when a sim-counter delta is not an exact integer.

        ``k`` repeated float adds are not bitwise-equal to one ``k × delta``
        add, and the skip path cannot replay the event path's add sequence
        inside the registry — so a cycle that moves a float sim counter is
        never part of a confirmed steady state.
        """
        for _name, per_cycle in delta.metrics:
            if not isinstance(per_cycle, int):
                return "non-integer-telemetry"
        return None

    # -- one canonical cycle -----------------------------------------------------

    def _timed_body(self, body: ProcessGenerator, finished: dict[int, float], proc_id: int):
        value = yield from body
        finished[proc_id] = self.sim.now
        return value

    def _probe_cycle(self, program: CycleProgram) -> CycleDelta:
        """Event-simulate exactly one cycle from canonical state."""
        sim = self.sim
        if not sim.quiescent:
            raise SimulationError(
                "fast-forward cycles need a quiescent simulator between them"
            )
        sim.rewind(0.0)
        contexts = list(program.contexts)
        segments = self._segments()
        # Canonical per-cycle state: the engine owns cross-cycle totals, so
        # in-simulation accumulators are zeroed each cycle — this is what
        # makes consecutive deltas bitwise comparable.
        for ctx in contexts:
            ctx.compute_time_ms = 0.0
            ctx.comm_time_ms = 0.0
            ctx.activity.clear()
            ctx.cycle_marks.clear()
        seg_snapshot = {}
        for seg in segments:
            seg.busy_time_ms = 0.0
            seg_snapshot[seg.name] = (seg.frames_carried, seg.bytes_carried)
        ep_snapshot = {}
        for ctx in contexts:
            stats = ctx.endpoint.stats
            ep_snapshot[ctx.processor.proc_id] = (
                stats.messages_sent,
                stats.messages_received,
                stats.bytes_sent,
                stats.bytes_received,
                stats.datagrams_sent,
                stats.acks_sent,
                stats.retransmissions,
            )
        counters_before = self.telemetry.metrics.counter_values("sim")

        finished: dict[int, float] = {}
        procs = [
            sim.process(
                self._timed_body(body, finished, ctx.processor.proc_id),
                name=f"ff-cycle:{ctx.rank}",
            )
            for ctx, body in zip(contexts, program.cycle_bodies())
        ]

        def driver() -> ProcessGenerator:
            values = yield sim.all_of(procs)
            return list(values)

        sim.run_process(driver())
        sim.run()  # drain trailing acks so the next cycle starts canonical

        proc_cycles = []
        for ctx in contexts:
            pid = ctx.processor.proc_id
            stats = ctx.endpoint.stats
            before = ep_snapshot[pid]
            proc_cycles.append(
                ProcessorCycle(
                    proc_id=pid,
                    compute_ms=ctx.compute_time_ms,
                    comm_ms=ctx.comm_time_ms,
                    completion_ms=finished[pid],
                    messages_sent=stats.messages_sent - before[0],
                    messages_received=stats.messages_received - before[1],
                    bytes_sent=stats.bytes_sent - before[2],
                    bytes_received=stats.bytes_received - before[3],
                    datagrams_sent=stats.datagrams_sent - before[4],
                    acks_sent=stats.acks_sent - before[5],
                    retransmissions=stats.retransmissions - before[6],
                )
            )
        seg_cycles = []
        for seg in segments:
            frames0, bytes0 = seg_snapshot[seg.name]
            seg_cycles.append(
                SegmentCycle(
                    name=seg.name,
                    busy_ms=seg.busy_time_ms,
                    frames=seg.frames_carried - frames0,
                    bytes=seg.bytes_carried - bytes0,
                )
            )
        counters_after = self.telemetry.metrics.counter_values("sim")
        return CycleDelta(
            clock_ms=sim.now,
            processors=tuple(proc_cycles),
            segments=tuple(seg_cycles),
            metrics=tuple(
                (name, value - counters_before.get(name, 0))
                for name, value in sorted(counters_after.items())
            ),
        )

    # -- the drive loop ----------------------------------------------------------

    def run(
        self, program: CycleProgram, cycles: int, *, mode: str = "fast"
    ) -> FastForwardReport:
        """Execute ``cycles`` cycles of ``program`` in ``mode``.

        ``mode="event"`` simulates every cycle (the parity baseline);
        ``mode="fast"`` fast-forwards confirmed steady-state windows.
        Both produce identical :meth:`FastForwardReport.parity_signature`.
        """
        if mode not in ("fast", "event"):
            raise SimulationError(f"mode must be 'fast' or 'event', got {mode!r}")
        if cycles < 1:
            raise SimulationError(f"cycles must be >= 1, got {cycles}")
        self._invalidate()
        report = FastForwardReport(
            mode=mode,
            cycles=cycles,
            probed_cycles=0,
            fast_forwarded_cycles=0,
            clock_ms=0.0,
            per_processor={},
            per_segment={},
        )
        failure_cycles = self._failure_cycles()
        pending_failures = sorted(c for c in failure_cycles if c < cycles)
        last_blocker: Optional[str] = None

        cycle = 0
        while cycle < cycles:
            if cycle in failure_cycles:
                pids = failure_cycles[cycle]
                for pid in pids:
                    self.network.processor(pid).fail()
                    self.mmps.fail_processor(pid)
                program.handle_failure(pids)
                self._invalidate()
                report.fallbacks.append(f"failure@{cycle}")
                self._m_fallbacks.inc()
                self.telemetry.spans.event(
                    "ff.fallback", reason="failure", cycle=cycle
                )
                pending_failures = [c for c in pending_failures if c > cycle]

            if mode == "fast" and self._ff_delta is not None:
                if self._environment_signature(program) != self._ff_signature:
                    self._invalidate()
                    report.fallbacks.append(f"environment-changed@{cycle}")
                else:
                    horizon = pending_failures[0] if pending_failures else cycles
                    k = min(cycles, horizon) - cycle
                    if k > 0:
                        self._fast_forward(report, self._ff_delta, k)
                        report.fast_forwarded_cycles += k
                        report.windows.append((cycle, k))
                        self._m_cycles.inc(k)
                        self._m_skipped.inc(k)
                        self._m_windows.inc()
                        self.telemetry.spans.event(
                            "ff.window", first_cycle=cycle, length=k
                        )
                        cycle += k
                        continue

            probe_span = self.telemetry.spans.start("ff.probe", cycle=cycle)
            delta = self._probe_cycle(program)
            probe_span.end()
            report.probed_cycles += 1
            self._m_cycles.inc()
            self._m_probed.inc()
            self._accumulate(report, delta)
            cycle += 1

            if mode == "fast":
                blocker = (
                    self._steady_environment()
                    or self._nonint_telemetry(delta)
                    or self._would_triage(delta, program)
                )
                if blocker is not None:
                    if blocker != last_blocker:
                        report.fallbacks.append(f"{blocker}@{cycle - 1}")
                        self._m_fallbacks.inc()
                        self.telemetry.spans.event(
                            "ff.fallback", reason=blocker, cycle=cycle - 1
                        )
                    last_blocker = blocker
                    self._invalidate()
                elif self._last_delta == delta:
                    # Two consecutive bitwise-equal probes: steady state
                    # confirmed, later identical cycles can be skipped.
                    last_blocker = None
                    self._ff_delta = delta
                    self._ff_signature = self._environment_signature(program)
                else:
                    last_blocker = None
                    self._last_delta = delta
                    self._ff_delta = None
                    self._ff_signature = None
        return report
