"""repro — runtime network partitioning of data parallel computations.

A production-quality reproduction of Weissman & Grimshaw, *"Network
Partitioning of Data Parallel Computations"* (HPDC 1994): a runtime method
that chooses the number and type of processors for an SPMD computation on a
heterogeneous workstation network and computes a load-balanced decomposition
of its data domain — plus every substrate the method rests on, simulated:
discrete-event kernel, ethernet/router hardware, the MMPS reliable message
layer, an SPMD runtime, offline cost-function benchmarking, and the
evaluation applications (five-point stencil, Gaussian elimination, N-body).

Quickstart
----------
>>> from repro import (
...     paper_testbed, gather_available_resources, partition,
... )
>>> from repro.apps import stencil_computation
>>> from repro.experiments import paper_cost_database
>>> net = paper_testbed()
>>> decision = partition(
...     stencil_computation(600, overlap=True),
...     gather_available_resources(net),
...     paper_cost_database(),
... )
>>> decision.counts_by_name()
{'sparc2': 6, 'ipc': 6}

Subpackages
-----------
:mod:`repro.sim`            discrete-event kernel
:mod:`repro.hardware`       processors, clusters, segments, routers
:mod:`repro.mmps`           reliable UDP-style message passing
:mod:`repro.spmd`           topologies, task API, run driver, collectives
:mod:`repro.benchmarking`   offline cost-function fitting (Eq 1)
:mod:`repro.model`          PDUs, phase annotations, partition vectors
:mod:`repro.partition`      the partitioning method (Eq 3-6, heuristic)
:mod:`repro.apps`           STEN-1/STEN-2, Gaussian elimination, N-body
:mod:`repro.experiments`    Table 1/Table 2/Fig 3 reproduction harnesses
"""

from repro.benchmarking import CostDatabase, Workbench, build_cost_database
from repro.hardware import HeterogeneousNetwork, Processor, ProcessorSpec
from repro.hardware.presets import paper_testbed, three_cluster_network
from repro.mmps import MMPS
from repro.model import (
    CommunicationPhase,
    ComputationPhase,
    DataParallelComputation,
    PartitionVector,
    PDUSpace,
)
from repro.partition import (
    CycleEstimator,
    PartitionDecision,
    ProcessorConfiguration,
    balanced_partition_vector,
    exhaustive_partition,
    gather_available_resources,
    general_partition,
    partition,
)
from repro.spmd import SPMDRun, TaskContext, Topology

__version__ = "1.0.0"

__all__ = [
    "CostDatabase",
    "Workbench",
    "build_cost_database",
    "HeterogeneousNetwork",
    "Processor",
    "ProcessorSpec",
    "paper_testbed",
    "three_cluster_network",
    "MMPS",
    "CommunicationPhase",
    "ComputationPhase",
    "DataParallelComputation",
    "PartitionVector",
    "PDUSpace",
    "CycleEstimator",
    "PartitionDecision",
    "ProcessorConfiguration",
    "balanced_partition_vector",
    "exhaustive_partition",
    "gather_available_resources",
    "general_partition",
    "partition",
    "SPMDRun",
    "TaskContext",
    "Topology",
    "__version__",
]
