"""The cost-function database built by the offline benchmarking phase.

:class:`CostDatabase` stores the fitted per-(cluster, topology) Eq 1
functions plus the per-(cluster, cluster) router and coercion penalties, and
implements the paper's composition rules:

* within a cluster: ``T_comm[C_i, τ](b, p)`` (Eq 1);
* across clusters: the communicating cluster sees ``p + 1`` stations (the
  router counts as one more contender) plus ``T_router`` and ``T_coerce``;
* overall (Eq 2): the max over participating clusters for non
  bandwidth-limited topologies; bandwidth-limited ones pool all processors.

:func:`build_cost_database` runs the whole offline phase on a workbench.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.benchmarking.costfuncs import CommCostFunction, LinearByteCost
from repro.benchmarking.fitting import fit_comm_cost, fit_linear_byte_cost
from repro.benchmarking.microbench import (
    Workbench,
    measure_crossing_penalty,
    sweep_cluster,
)
from repro.errors import FittingError
from repro.spmd.topology import Topology

__all__ = ["CostDatabase", "build_cost_database"]


@dataclass
class CostDatabase:
    """Fitted communication cost functions for a network."""

    comm: dict[tuple[str, str], CommCostFunction] = field(default_factory=dict)
    router: dict[tuple[str, str], LinearByteCost] = field(default_factory=dict)
    coerce: dict[tuple[str, str], LinearByteCost] = field(default_factory=dict)
    #: Optional uniform router penalty applied to every cluster pair with
    #: no explicit ``router`` entry — the wide-area case, where thousands
    #: of sites share one backbone cost and per-pair tables would need
    #: O(K²) entries.  Explicit pairs always win over the default.
    router_default: Optional[LinearByteCost] = None
    #: Whether a multi-cluster configuration charges each cluster one extra
    #: contending station for the router (§3's ``p + 1`` form).  The paper's
    #: §6 worked composition omits the extra station; databases replicating
    #: the published constants set this to False.
    router_extra_station: bool = True
    #: Keyed LRU over :meth:`topology_cost` compositions (hot path: every
    #: ``T_c`` probe funnels through one of these).  Capped so long sweeps
    #: over distinct (b, counts) keys cannot grow without bound.
    topology_cache_max: int = 65_536

    def __post_init__(self) -> None:
        self._topo_cache: OrderedDict[tuple, float] = OrderedDict()
        self._coeff_cache: dict[tuple[str, str], tuple] = {}

    def _invalidate_caches(self) -> None:
        self._topo_cache.clear()
        self._coeff_cache.clear()

    # -- registration ----------------------------------------------------------

    def add_comm(self, fn: CommCostFunction) -> None:
        """Register an Eq 1 function for (cluster, topology)."""
        self.comm[(fn.cluster, fn.topology)] = fn
        self._invalidate_caches()

    def add_router(self, fn: LinearByteCost) -> None:
        """Register a router penalty for an ordered cluster pair."""
        self.router[(fn.src, fn.dst)] = fn
        self._invalidate_caches()

    def add_coerce(self, fn: LinearByteCost) -> None:
        """Register a coercion penalty for an ordered cluster pair."""
        self.coerce[(fn.src, fn.dst)] = fn
        self._invalidate_caches()

    # -- lookup ------------------------------------------------------------------

    def comm_coefficients(
        self, cluster: str, topology: Topology | str
    ) -> tuple[float, float, float, float, bool]:
        """The precompiled ``(c1, c2, c3, c4, abs_quirk)`` tuple for Eq 1.

        Cached so hot loops (and the vectorized fast path) skip the dict
        lookup + dataclass attribute walk per probe.
        """
        key = (cluster, str(topology))
        cached = self._coeff_cache.get(key)
        if cached is None:
            fn = self.comm.get(key)
            if fn is None:
                raise FittingError(
                    f"no fitted cost function for cluster {cluster!r}, "
                    f"topology {str(topology)!r}"
                )
            cached = (fn.c1, fn.c2, fn.c3, fn.c4, fn.abs_bandwidth_quirk)
            self._coeff_cache[key] = cached
        return cached

    def comm_cost(self, cluster: str, topology: Topology | str, b: float, p: int) -> float:
        """``T_comm[C_i, τ](b, p)`` from the fitted function."""
        c1, c2, c3, c4, quirk = self.comm_coefficients(cluster, topology)
        if p <= 1:
            return 0.0
        if b < 0:
            raise ValueError(f"message size must be non-negative, got {b}")
        per_byte = c3 + c4 * p
        if quirk:
            per_byte = abs(per_byte)
        return c1 + c2 * p + b * per_byte

    def set_router_default(self, fn: Optional[LinearByteCost]) -> None:
        """Set (or clear) the uniform fallback router penalty."""
        self.router_default = fn
        self._invalidate_caches()

    def _pair_cost(
        self, table: dict[tuple[str, str], LinearByteCost], a: str, b_name: str
    ) -> Optional[LinearByteCost]:
        fn = table.get((a, b_name)) or table.get((b_name, a))
        if fn is None and table is self.router:
            return self.router_default
        return fn

    def router_cost(self, cluster_a: str, cluster_b: str, b: float) -> float:
        """``T_router[C_i, C_j](b)``; 0 within a cluster."""
        if cluster_a == cluster_b:
            return 0.0
        fn = self._pair_cost(self.router, cluster_a, cluster_b)
        if fn is None:
            raise FittingError(
                f"no fitted router cost for clusters {cluster_a!r}/{cluster_b!r}"
            )
        return fn.evaluate(b)

    def coerce_cost(self, cluster_a: str, cluster_b: str, b: float) -> float:
        """``T_coerce[C_i, C_j](b)``; 0 within a cluster or if never fitted.

        Homogeneous-format networks (the paper's all-Sun4 testbed) simply
        have no coercion entries, and the cost is zero.
        """
        if cluster_a == cluster_b:
            return 0.0
        fn = self._pair_cost(self.coerce, cluster_a, cluster_b)
        return fn.evaluate(b) if fn is not None else 0.0

    # -- composition (paper §3, Eq 2) -----------------------------------------------

    def topology_cost(
        self,
        topology: Topology | str,
        b: float,
        processors_per_cluster: dict[str, int],
    ) -> float:
        """``T_comm[τ]`` for a multi-cluster configuration.

        Non bandwidth-limited topologies: each participating cluster ``C_i``
        sees its own ``p_i`` (plus one extra contending station for the
        router when other clusters participate); the overall cost is the max
        over clusters plus the router (and coercion) penalty on the crossing
        messages.  Bandwidth-limited topologies (broadcast) are charged at
        the *total* processor count on the dominant cluster's function.
        """
        active = {c: p for c, p in processors_per_cluster.items() if p > 0}
        if not active:
            return 0.0
        topo = Topology(topology) if not isinstance(topology, Topology) else topology
        total = sum(active.values())
        if total <= 1:
            return 0.0
        key = (str(topo), float(b), tuple(sorted(active.items())))
        cache = self._topo_cache
        cached = cache.get(key)
        if cached is not None:
            cache.move_to_end(key)
            return cached
        cost = self._topology_cost_uncached(topo, b, active, total)
        cache[key] = cost
        if len(cache) > self.topology_cache_max:
            cache.popitem(last=False)
        return cost

    def _topology_cost_uncached(
        self, topo: Topology, b: float, active: dict[str, int], total: int
    ) -> float:
        names = list(active)
        if topo.bandwidth_limited:
            # Offered load scales with the total processor count regardless
            # of segment placement (paper: broadcast gains nothing from
            # extra segments).
            per_cluster = [self.comm_cost(c, topo, b, total) for c in names]
            cost = max(per_cluster)
        else:
            per_cluster = []
            extra = 1 if (len(active) > 1 and self.router_extra_station) else 0
            for c, p in active.items():
                p_eff = p + extra
                if len(active) > 1:
                    # A cluster whose lone processor communicates across the
                    # router still exchanges messages: it sees at least a
                    # 2-station pattern (its partner arrives via the router).
                    p_eff = max(p_eff, 2)
                per_cluster.append(self.comm_cost(c, topo, b, p_eff))
            cost = max(per_cluster)
        if len(active) > 1:
            crossing = 0.0
            for i, a in enumerate(names):
                for c in names[i + 1 :]:
                    crossing = max(
                        crossing,
                        self.router_cost(a, c, b) + self.coerce_cost(a, c, b),
                    )
            cost += crossing
        return cost

    # -- serialization ---------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the database (e.g. to cache the offline phase)."""
        payload = {
            "router_extra_station": self.router_extra_station,
            "comm": [fn.as_dict() for fn in self.comm.values()],
            "router": [fn.as_dict() for fn in self.router.values()],
            "coerce": [fn.as_dict() for fn in self.coerce.values()],
        }
        if self.router_default is not None:
            payload["router_default"] = self.router_default.as_dict()
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "CostDatabase":
        """Inverse of :meth:`to_json`."""
        data = json.loads(text)
        db = cls(router_extra_station=data.get("router_extra_station", True))
        for item in data.get("comm", []):
            db.add_comm(CommCostFunction.from_dict(item))
        for item in data.get("router", []):
            db.add_router(LinearByteCost.from_dict(item))
        for item in data.get("coerce", []):
            db.add_coerce(LinearByteCost.from_dict(item))
        if "router_default" in data:
            db.set_router_default(LinearByteCost.from_dict(data["router_default"]))
        return db


def build_cost_database(
    workbench: Workbench,
    clusters: Sequence[str],
    topologies: Sequence[Topology],
    *,
    p_values: Optional[Sequence[int]] = None,
    b_values: Sequence[int] = (64, 256, 1024, 2400, 4800),
    cycles: int = 5,
    include_router: bool = True,
    include_coercion: bool = False,
) -> CostDatabase:
    """Run the full offline benchmarking phase and fit every cost function.

    ``p_values`` defaults to ``2..cluster size`` per cluster.  Router
    penalties are measured for every cluster pair when ``include_router``;
    ``include_coercion`` additionally fits ``T_coerce`` for pairs whose
    data formats differ (see
    :func:`repro.benchmarking.procbench.benchmark_coercion_cost`).
    """
    db = CostDatabase()
    probe_net = workbench.network_factory()
    for cluster in clusters:
        size = len(probe_net.cluster(cluster))
        if p_values is not None:
            # Clamp the requested sweep to this cluster's actual size.
            ps = [p for p in p_values if p <= size]
        else:
            ps = list(range(2, size + 1))
        if len(ps) < 2:
            raise FittingError(
                f"cluster {cluster!r} (size {size}) leaves fewer than two "
                f"usable p values from {list(p_values or ())}"
            )
        for topology in topologies:
            samples = sweep_cluster(
                workbench, cluster, topology, ps, b_values, cycles=cycles
            )
            fn = fit_comm_cost(
                cluster, str(topology), [(s.p, s.b, s.t_ms) for s in samples]
            )
            db.add_comm(fn)
    if include_coercion:
        from repro.benchmarking.procbench import benchmark_coercion_cost

        for i, a in enumerate(clusters):
            for b_name in clusters[i + 1 :]:
                if probe_net.cluster(a).spec.data_format != probe_net.cluster(
                    b_name
                ).spec.data_format:
                    db.add_coerce(
                        benchmark_coercion_cost(workbench, a, b_name, b_values)
                    )
    if include_router:
        for i, a in enumerate(clusters):
            for b_name in clusters[i + 1 :]:
                penalty = measure_crossing_penalty(
                    workbench, a, b_name, b_values, cycles=cycles
                )
                # The end-to-end crossing measurement includes any coercion
                # the receiver paid; with a separate T_coerce fitted, remove
                # its share so router + coerce is not double counted when
                # topology_cost later sums both.
                adjusted = [
                    (b, t - db.coerce_cost(a, b_name, b)) for b, t in penalty
                ]
                db.add_router(fit_linear_byte_cost(a, b_name, "router", adjusted))
    return db
