"""Least-squares fitting of the cost-function constants.

The paper derives Eq 1's constants by benchmarking "different p and b
values".  We do the same: collect ``(p, b, t)`` samples from the simulated
topology benchmarks and solve the linear system with the design matrix
``[1, p, b, b·p]``.  Router and coercion penalties are fitted as
``a + s·b`` from ``(b, t)`` samples.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.benchmarking.costfuncs import CommCostFunction, LinearByteCost
from repro.errors import FittingError

__all__ = ["fit_comm_cost", "fit_linear_byte_cost", "r_squared"]


def r_squared(observed: np.ndarray, predicted: np.ndarray) -> float:
    """Coefficient of determination; 1.0 for a perfect fit.

    Degenerate case: if the observations have no variance, returns 1.0 when
    the predictions match them and 0.0 otherwise.
    """
    observed = np.asarray(observed, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    ss_res = float(np.sum((observed - predicted) ** 2))
    ss_tot = float(np.sum((observed - observed.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res < 1e-12 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_comm_cost(
    cluster: str,
    topology: str,
    samples: Sequence[tuple[int, float, float]],
    *,
    abs_bandwidth_quirk: bool = True,
) -> CommCostFunction:
    """Fit Eq 1 constants from ``(p, b, t_ms)`` samples.

    Requires at least 4 samples spanning more than one ``p`` and ``b`` value,
    otherwise the design matrix is rank deficient.
    """
    if len(samples) < 4:
        raise FittingError(
            f"need at least 4 samples to fit Eq 1, got {len(samples)}"
        )
    p = np.array([s[0] for s in samples], dtype=float)
    b = np.array([s[1] for s in samples], dtype=float)
    t = np.array([s[2] for s in samples], dtype=float)
    if np.unique(p).size < 2 or np.unique(b).size < 2:
        raise FittingError(
            "Eq 1 fit needs variation in both p and b "
            f"(got {np.unique(p).size} p values, {np.unique(b).size} b values)"
        )
    design = np.column_stack([np.ones_like(p), p, b, b * p])
    coeffs, _res, rank, _sv = np.linalg.lstsq(design, t, rcond=None)
    if rank < 4:
        raise FittingError(f"rank-deficient Eq 1 design matrix (rank {rank})")
    predicted = design @ coeffs
    return CommCostFunction(
        cluster=cluster,
        topology=topology,
        c1=float(coeffs[0]),
        c2=float(coeffs[1]),
        c3=float(coeffs[2]),
        c4=float(coeffs[3]),
        abs_bandwidth_quirk=abs_bandwidth_quirk,
        r_squared=r_squared(t, predicted),
        n_samples=len(samples),
    )


def fit_linear_byte_cost(
    src: str,
    dst: str,
    kind: str,
    samples: Sequence[tuple[float, float]],
) -> LinearByteCost:
    """Fit ``a + s·b`` from ``(b, t_ms)`` samples (router/coercion penalties)."""
    if len(samples) < 2:
        raise FittingError(
            f"need at least 2 samples to fit a per-byte cost, got {len(samples)}"
        )
    b = np.array([s[0] for s in samples], dtype=float)
    t = np.array([s[1] for s in samples], dtype=float)
    if np.unique(b).size < 2:
        raise FittingError("per-byte fit needs at least two distinct b values")
    design = np.column_stack([np.ones_like(b), b])
    coeffs, _res, rank, _sv = np.linalg.lstsq(design, t, rcond=None)
    if rank < 2:
        raise FittingError(f"rank-deficient per-byte design matrix (rank {rank})")
    predicted = design @ coeffs
    return LinearByteCost(
        src=src,
        dst=dst,
        kind=kind,
        intercept_ms=float(coeffs[0]),
        slope_ms_per_byte=float(coeffs[1]),
        r_squared=r_squared(t, predicted),
        n_samples=len(samples),
    )
