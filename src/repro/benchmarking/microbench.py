"""Topology-specific communication microbenchmarks (paper §3).

"A set of very accurate message cost functions [can] be constructed for each
cluster type by benchmarking a set of topology-specific communication
programs."  Each benchmark instantiates tasks over a chosen processor set,
runs warm-up plus measured synchronous communication cycles, and reports the
average per-cycle elapsed time — precisely the quantity Eq 1 models.

Every measurement runs on a *fresh* simulated network built by the supplied
factory, so measurements never perturb each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import FittingError
from repro.hardware.network import HeterogeneousNetwork
from repro.mmps.system import MMPS
from repro.spmd.runtime import SPMDRun
from repro.spmd.topology import Topology

__all__ = ["Workbench", "CycleSample", "measure_cycle_time", "sweep_cluster", "measure_crossing_penalty"]

#: Builds a fresh network for one measurement.
NetworkFactory = Callable[[], HeterogeneousNetwork]
#: Builds the message system under test over a fresh network.
MMPSFactory = Callable[[HeterogeneousNetwork], MMPS]


@dataclass(frozen=True)
class CycleSample:
    """One benchmark observation: ``p`` processors, ``b`` bytes, ``t_ms``/cycle."""

    p: int
    b: int
    t_ms: float


class Workbench:
    """Factory pair producing a fresh (network, MMPS) per measurement."""

    def __init__(
        self,
        network_factory: NetworkFactory,
        mmps_factory: Optional[MMPSFactory] = None,
    ) -> None:
        self.network_factory = network_factory
        self.mmps_factory = mmps_factory or (lambda net: MMPS(net))

    def fresh(self) -> tuple[HeterogeneousNetwork, MMPS]:
        """A brand-new simulated environment."""
        net = self.network_factory()
        return net, self.mmps_factory(net)


def _comm_cycles_body(nbytes: int, cycles: int, warmup: int):
    """Task body: warm-up cycles then measured exchange cycles."""

    def body(ctx):
        for _ in range(warmup):
            yield from ctx.exchange(nbytes, tag="warm")
        ctx.mark_cycle()
        for _ in range(cycles):
            yield from ctx.exchange(nbytes, tag="bench")
        ctx.mark_cycle()
        marks = ctx.cycle_marks
        return (marks[-1] - marks[0]) / cycles

    return body


def measure_cycle_time(
    workbench: Workbench,
    cluster_counts: dict[str, int],
    topology: Topology,
    nbytes: int,
    *,
    cycles: int = 5,
    warmup: int = 1,
) -> float:
    """Average per-cycle cost for one processor configuration and size.

    ``cluster_counts`` maps cluster names to processor counts; processors
    are taken cluster-contiguously in the given order.  The result is the
    *maximum* over tasks of their measured mean cycle time, matching the
    paper's synchronous-cost observation (all roughly equal, governed by the
    worst).
    """
    if cycles < 1:
        raise FittingError("need at least one measured cycle")
    net, mmps = workbench.fresh()
    processors = []
    for name, count in cluster_counts.items():
        cluster = net.cluster(name)
        if count > len(cluster):
            raise FittingError(
                f"cluster {name!r} has {len(cluster)} nodes, {count} requested"
            )
        processors.extend(cluster.processors[:count])
    if len(processors) < 2:
        return 0.0  # a lone processor has no communication cost
    run = SPMDRun(mmps, processors, _comm_cycles_body(nbytes, cycles, warmup), topology)
    result = run.execute()
    return max(result.task_values)


def sweep_cluster(
    workbench: Workbench,
    cluster: str,
    topology: Topology,
    p_values: Sequence[int],
    b_values: Sequence[int],
    *,
    cycles: int = 5,
    warmup: int = 1,
) -> list[CycleSample]:
    """The paper's offline sweep: measure every (p, b) grid point.

    Returns samples suitable for :func:`repro.benchmarking.fitting.fit_comm_cost`.
    """
    samples = []
    for p in p_values:
        if p < 2:
            raise FittingError("sweep p values must be >= 2 (p=1 has no comm)")
        for b in b_values:
            t = measure_cycle_time(
                workbench, {cluster: p}, topology, b, cycles=cycles, warmup=warmup
            )
            samples.append(CycleSample(p=p, b=b, t_ms=t))
    return samples


def measure_crossing_penalty(
    workbench: Workbench,
    cluster_a: str,
    cluster_b: str,
    b_values: Sequence[int],
    *,
    cycles: int = 5,
    warmup: int = 1,
) -> list[tuple[int, float]]:
    """Extra per-cycle cost of a cross-router pair vs an intra-cluster pair.

    For each message size, measures a two-task 1-D exchange within
    ``cluster_a`` and one spanning the router into ``cluster_b``; the
    difference isolates the router (plus any coercion) penalty as a function
    of ``b``.  Returns ``(b, penalty_ms)`` samples for the linear fit.
    """
    samples = []
    for b in b_values:
        t_intra = measure_cycle_time(
            workbench, {cluster_a: 2}, Topology.ONE_D, b, cycles=cycles, warmup=warmup
        )
        t_cross = measure_cycle_time(
            workbench,
            {cluster_a: 1, cluster_b: 1},
            Topology.ONE_D,
            b,
            cycles=cycles,
            warmup=warmup,
        )
        samples.append((b, t_cross - t_intra))
    return samples
