"""Persisting the offline benchmarking phase to disk.

The paper's cost functions are "constructed offline" once per installation;
a production runtime loads them rather than re-benchmarking at every start.
:func:`load_or_build` implements that contract with a fingerprint guard: if
the stored fingerprint (e.g. a hash of the network description and sweep
parameters) differs, the cache is considered stale and rebuilt.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Optional, Union

from repro.benchmarking.database import CostDatabase
from repro.errors import FittingError

__all__ = ["load_or_build", "save_database", "load_database"]


def save_database(
    db: CostDatabase, path: Union[str, Path], *, fingerprint: str = ""
) -> Path:
    """Write a database (plus fingerprint) to ``path``."""
    path = Path(path)
    payload = {"fingerprint": fingerprint, "database": json.loads(db.to_json())}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_database(
    path: Union[str, Path], *, expected_fingerprint: Optional[str] = None
) -> CostDatabase:
    """Read a database back; raises :class:`FittingError` on any mismatch."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise FittingError(f"no cost database at {path}") from None
    except json.JSONDecodeError as exc:
        raise FittingError(f"corrupt cost database at {path}: {exc}") from exc
    if not isinstance(payload, dict) or "database" not in payload:
        raise FittingError(f"{path} is not a cost-database cache file")
    if (
        expected_fingerprint is not None
        and payload.get("fingerprint", "") != expected_fingerprint
    ):
        raise FittingError(
            f"stale cost database at {path}: fingerprint "
            f"{payload.get('fingerprint', '')!r} != {expected_fingerprint!r}"
        )
    return CostDatabase.from_json(json.dumps(payload["database"]))


def load_or_build(
    path: Union[str, Path],
    builder: Callable[[], CostDatabase],
    *,
    fingerprint: str = "",
    refresh: bool = False,
) -> CostDatabase:
    """Load the cached database, or run the offline phase and cache it.

    ``fingerprint`` should change whenever the network or the sweep
    parameters do; a mismatch (or ``refresh=True``) triggers a rebuild.
    """
    path = Path(path)
    if not refresh and path.exists():
        try:
            return load_database(path, expected_fingerprint=fingerprint)
        except FittingError:
            pass  # stale or corrupt: fall through to rebuild
    db = builder()
    save_database(db, path, fingerprint=fingerprint)
    return db
