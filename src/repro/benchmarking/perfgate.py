"""Regression gates over committed benchmark payloads.

The perf-smoke CI jobs record benchmarks as JSON payloads and the repo
commits the last known-good record of each.  This module compares a fresh
payload against its baseline and reports what regressed.

``BENCH_partition_perf.json`` (:func:`check_regression`, the
scalar/batch/array partition benchmark from
``benchmarks/test_bench_partition_perf.py``):

* **decision drift** — any engine choosing a different configuration is
  a correctness bug, never noise, and always fails;
* **floor breach** — the array engine's configs/s must be at least the
  payload's committed ``array_over_batch_floor`` times the batch engine's
  (a within-run ratio, like the telemetry budget) whenever both engines
  are present; always fails;
* **speedup collapse** — the batch/scalar and array/batch speedups are
  within-run ratios, so they transfer across machines; a drop beyond
  ``factor`` (default 2×) against the baseline fails.  Baselines predating
  the array engine simply skip the array checks (back-compat);
* **throughput collapse** (``strict=True`` only) — absolute
  ``configs_per_s`` per engine; off by default because wall-clock rates do
  not transfer between the machine that committed the baseline and the CI
  runner.

``BENCH_sim_perf.json`` (:func:`check_sim_regression`, the fast-forward vs
event-level engine benchmark from ``benchmarks/test_bench_sim_perf.py``):

* **parity breakage** — the two modes disagreeing on any simulated
  observable is a correctness bug and always fails;
* **clock drift** — the simulator is deterministic, so the simulated clock
  moving against the committed baseline means behaviour changed, not
  performance; always fails;
* **speedup collapse** — the within-run fast/event ratio, for both the
  microbench and the E16 grid validation pass, beyond ``factor``;
* **throughput collapse** (``strict=True`` only) — absolute ``cycles_per_s``
  per mode.

``BENCH_telemetry_overhead.json`` (:func:`check_telemetry_regression`, the
telemetry hot-path micro-benchmark from
``benchmarks/test_bench_telemetry_overhead.py``):

* **budget breach** — the enabled/null counter-inc ratio exceeding the
  payload's committed budget always fails; the ratio is within-run, so it
  transfers across machines;
* **ratio regression** — the ratio growing beyond ``factor``x against the
  committed baseline;
* **absolute cost collapse** (``strict=True`` only) — enabled
  ``inc()`` nanoseconds per op against the baseline machine's.

``BENCH_adaptive_perf.json`` (:func:`check_adaptive_regression`, the
adaptive-vs-always-research churn grid from
``benchmarks/test_bench_adaptive_perf.py``):

* **parity breakage** — a churn scenario whose supervised answer differs
  from the clean run's, or a divergence fallback whose decision does not
  match the research baseline's, is a correctness bug and always fails;
* **win-floor breach** — the adaptive policy must win at least the
  payload's committed ``min_wins`` scenarios on total elapsed time (a
  within-run invariant, machine-independent); always fails;
* **clock drift** — both policies run on the deterministic sim clock, so
  per-scenario elapsed times moving against the committed baseline means
  behaviour changed, not performance; always fails;
* **speedup collapse** — a scenario's baseline/adaptive speedup dropping
  beyond ``factor`` against the committed record (redundant with drift
  while both are exact, but survives a legitimately regenerated baseline).

``BENCH_widearea_perf.json`` (:func:`check_widearea_regression`, the
collapsed wide-area decision benchmark from
``benchmarks/test_bench_widearea_perf.py``) — see that function's
docstring for the gate inventory (parity, the committed <100 ms decision
budget, deterministic decision drift, evaluation blow-up).

``BENCH_serve_perf.json`` (:func:`check_serve_regression`, the decision
service benchmark from ``benchmarks/test_bench_serve_perf.py``) — see
that function's docstring for the gate inventory (served-vs-direct
parity, error replies, the committed served/baseline speedup floor,
speedup and coalescing-ratio drift).

:func:`payload_kind` distinguishes the schemas so CI can gate whichever
payload it is handed.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "check_regression",
    "check_sim_regression",
    "check_telemetry_regression",
    "check_adaptive_regression",
    "check_widearea_regression",
    "check_serve_regression",
    "payload_kind",
    "format_problems",
]


def payload_kind(payload: dict[str, Any]) -> str:
    """``"partition"``/``"sim"``/``"telemetry"``/``"adaptive"``/
    ``"widearea"``/``"serve"``, keyed on the schema shape."""
    if "serve" in payload:
        return "serve"
    if "widearea" in payload:
        return "widearea"
    if "telemetry_overhead" in payload:
        return "telemetry"
    if "adaptive_churn" in payload:
        return "adaptive"
    return "sim" if "modes" in payload else "partition"


def check_regression(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    factor: float = 2.0,
    strict: bool = False,
) -> list[str]:
    """Problems in ``current`` relative to ``baseline`` (empty = pass)."""
    if factor <= 1.0:
        raise ValueError(f"factor must exceed 1.0, got {factor}")
    problems: list[str] = []
    for engine, base in baseline.get("engines", {}).items():
        cur = current.get("engines", {}).get(engine)
        if cur is None:
            problems.append(f"engine {engine!r} missing from current payload")
            continue
        if cur["decision"] != base["decision"]:
            problems.append(
                f"{engine} decision drifted: {base['decision']} -> {cur['decision']}"
            )
        if strict and cur["configs_per_s"] * factor < base["configs_per_s"]:
            problems.append(
                f"{engine} throughput regressed >{factor:g}x: "
                f"{base['configs_per_s']:.0f} -> {cur['configs_per_s']:.0f} configs/s"
            )
    base_speedup = baseline.get("speedup_batch_over_scalar")
    cur_speedup = current.get("speedup_batch_over_scalar")
    if base_speedup is not None:
        if cur_speedup is None:
            problems.append("speedup_batch_over_scalar missing from current payload")
        elif cur_speedup * factor < base_speedup:
            problems.append(
                f"batch/scalar speedup regressed >{factor:g}x: "
                f"{base_speedup:.1f}x -> {cur_speedup:.1f}x"
            )
    # Array-engine gates: the committed floor is a within-run invariant of
    # the *current* payload; the regression check needs the baseline to
    # know about the array engine at all (back-compat with older records).
    cur_array = current.get("speedup_array_over_batch")
    floor = current.get("array_over_batch_floor")
    if cur_array is not None and floor is not None and cur_array < floor:
        problems.append(
            f"array/batch speedup below committed floor: "
            f"{cur_array:.1f}x < {floor:g}x"
        )
    base_array = baseline.get("speedup_array_over_batch")
    if base_array is not None:
        if cur_array is None:
            problems.append("speedup_array_over_batch missing from current payload")
        elif cur_array * factor < base_array:
            problems.append(
                f"array/batch speedup regressed >{factor:g}x: "
                f"{base_array:.1f}x -> {cur_array:.1f}x"
            )
    return problems


def check_sim_regression(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    factor: float = 2.0,
    strict: bool = False,
) -> list[str]:
    """Problems in a ``BENCH_sim_perf.json`` payload (empty = pass)."""
    if factor <= 1.0:
        raise ValueError(f"factor must exceed 1.0, got {factor}")
    problems: list[str] = []
    if not current.get("parity_ok", False):
        problems.append("fast/event parity broken in current payload")
    for mode, base in baseline.get("modes", {}).items():
        cur = current.get("modes", {}).get(mode)
        if cur is None:
            problems.append(f"mode {mode!r} missing from current payload")
            continue
        if cur["clock_ms"] != base["clock_ms"]:
            problems.append(
                f"{mode} simulated clock drifted: "
                f"{base['clock_ms']} -> {cur['clock_ms']} ms"
            )
        if strict and cur["cycles_per_s"] * factor < base["cycles_per_s"]:
            problems.append(
                f"{mode} throughput regressed >{factor:g}x: "
                f"{base['cycles_per_s']:.0f} -> {cur['cycles_per_s']:.0f} cycles/s"
            )
    base_speedup = baseline.get("speedup_fast_over_event")
    cur_speedup = current.get("speedup_fast_over_event")
    if base_speedup is not None:
        if cur_speedup is None:
            problems.append("speedup_fast_over_event missing from current payload")
        elif cur_speedup * factor < base_speedup:
            problems.append(
                f"fast/event speedup regressed >{factor:g}x: "
                f"{base_speedup:.1f}x -> {cur_speedup:.1f}x"
            )
    base_grid = baseline.get("grid")
    cur_grid = current.get("grid")
    if base_grid is not None:
        if cur_grid is None:
            problems.append("grid timing missing from current payload")
        else:
            if not cur_grid.get("parity_ok", False):
                problems.append("grid validation parity broken in current payload")
            if cur_grid["speedup"] * factor < base_grid["speedup"]:
                problems.append(
                    f"grid fast/event speedup regressed >{factor:g}x: "
                    f"{base_grid['speedup']:.1f}x -> {cur_grid['speedup']:.1f}x"
                )
    return problems


def check_telemetry_regression(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    factor: float = 2.0,
    strict: bool = False,
) -> list[str]:
    """Problems in a ``BENCH_telemetry_overhead.json`` payload (empty = pass)."""
    if factor <= 1.0:
        raise ValueError(f"factor must exceed 1.0, got {factor}")
    problems: list[str] = []
    cur = current.get("telemetry_overhead")
    if cur is None:
        return ["telemetry_overhead missing from current payload"]
    ratio, budget = cur["overhead_ratio"], cur["budget"]
    if ratio > budget:
        problems.append(
            f"enabled/null hot-path ratio over budget: "
            f"{ratio:.2f}x > {budget:g}x"
        )
    base = baseline.get("telemetry_overhead")
    if base is None:
        problems.append("telemetry_overhead missing from baseline payload")
        return problems
    if ratio > base["overhead_ratio"] * factor:
        problems.append(
            f"enabled/null hot-path ratio regressed >{factor:g}x: "
            f"{base['overhead_ratio']:.2f}x -> {ratio:.2f}x"
        )
    if strict and cur["enabled_inc_ns"] > base["enabled_inc_ns"] * factor:
        problems.append(
            f"enabled inc() cost regressed >{factor:g}x: "
            f"{base['enabled_inc_ns']:.0f} -> {cur['enabled_inc_ns']:.0f} ns/op"
        )
    return problems


def check_adaptive_regression(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    factor: float = 2.0,
    strict: bool = False,
) -> list[str]:
    """Problems in a ``BENCH_adaptive_perf.json`` payload (empty = pass).

    ``strict`` is accepted for signature parity with the other gates; the
    adaptive payload has no machine-dependent absolutes (everything runs
    on the simulated clock), so it changes nothing.
    """
    if factor <= 1.0:
        raise ValueError(f"factor must exceed 1.0, got {factor}")
    del strict  # no wall-clock absolutes in this payload
    problems: list[str] = []
    cur = current.get("adaptive_churn")
    if cur is None:
        return ["adaptive_churn missing from current payload"]
    if not cur.get("answer_parity_ok", False):
        problems.append("churn answer parity broken in current payload")
    if not cur.get("fallback_parity_ok", False):
        problems.append(
            "divergence-fallback decision parity broken in current payload"
        )
    wins, min_wins = cur.get("wins", 0), cur.get("min_wins", 0)
    if wins < min_wins:
        problems.append(
            f"adaptive wins below committed floor: {wins} < {min_wins} scenarios"
        )
    base = baseline.get("adaptive_churn")
    if base is None:
        problems.append("adaptive_churn missing from baseline payload")
        return problems
    for scenario, base_row in base.get("scenarios", {}).items():
        cur_row = cur.get("scenarios", {}).get(scenario)
        if cur_row is None:
            problems.append(f"scenario {scenario!r} missing from current payload")
            continue
        for policy in ("baseline_ms", "adaptive_ms"):
            if cur_row[policy] != base_row[policy]:
                problems.append(
                    f"{scenario} {policy} simulated clock drifted: "
                    f"{base_row[policy]} -> {cur_row[policy]} ms"
                )
        if cur_row["speedup"] * factor < base_row["speedup"]:
            problems.append(
                f"{scenario} baseline/adaptive speedup regressed >{factor:g}x: "
                f"{base_row['speedup']:.2f}x -> {cur_row['speedup']:.2f}x"
            )
    return problems


def check_widearea_regression(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    factor: float = 2.0,
    strict: bool = False,
) -> list[str]:
    """Problems in a ``BENCH_widearea_perf.json`` payload (empty = pass).

    * **parity breakage** — the collapsed engine diverging from the
      uncollapsed array engine on the small-instance block is a
      correctness bug and always fails;
    * **budget breach** — any pool size's best decision exceeding the
      payload's committed ``decision_budget_ms`` (a wall-time ceiling the
      feature's whole point is to stay under; generous enough — 100 ms
      versus ~30 ms measured — to absorb runner noise) always fails;
    * **decision drift** — a pool size choosing a different configuration
      or ``T_c`` than the committed baseline means behaviour changed, not
      performance (everything here is deterministic); always fails;
    * **evaluation blow-up** — a size evaluating more than ``factor``
      times the baseline's configurations means the collapse stopped
      collapsing;
    * **wall-time collapse** (``strict=True`` only) — absolute decide
      milliseconds against the baseline machine's.
    """
    if factor <= 1.0:
        raise ValueError(f"factor must exceed 1.0, got {factor}")
    problems: list[str] = []
    cur = current.get("widearea")
    if cur is None:
        return ["widearea missing from current payload"]
    if cur.get("parity_ok") is False:
        problems.append("collapsed vs array parity broken in current payload")
    budget = cur.get("decision_budget_ms")
    for size, row in cur.get("sizes", {}).items():
        if budget is not None and row["decide_ms"] > budget:
            problems.append(
                f"{size}-site decision over budget: "
                f"{row['decide_ms']:.2f} ms > {budget:g} ms"
            )
    base = baseline.get("widearea")
    if base is None:
        problems.append("widearea missing from baseline payload")
        return problems
    for size, base_row in base.get("sizes", {}).items():
        cur_row = cur.get("sizes", {}).get(size)
        if cur_row is None:
            problems.append(f"{size}-site pool missing from current payload")
            continue
        for field in ("active_clusters", "t_cycle_ms", "method", "classes"):
            if cur_row[field] != base_row[field]:
                problems.append(
                    f"{size}-site {field} drifted: "
                    f"{base_row[field]} -> {cur_row[field]}"
                )
        if cur_row["configs_evaluated"] > base_row["configs_evaluated"] * factor:
            problems.append(
                f"{size}-site evaluations grew >{factor:g}x: "
                f"{base_row['configs_evaluated']} -> "
                f"{cur_row['configs_evaluated']}"
            )
        if strict and cur_row["decide_ms"] > base_row["decide_ms"] * factor:
            problems.append(
                f"{size}-site decision regressed >{factor:g}x: "
                f"{base_row['decide_ms']:.2f} -> {cur_row['decide_ms']:.2f} ms"
            )
    return problems


def check_serve_regression(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    factor: float = 2.0,
    strict: bool = False,
) -> list[str]:
    """Problems in a ``BENCH_serve_perf.json`` payload (empty = pass).

    * **parity breakage** — a served decision diverging from the direct
      cold ``exhaustive_partition(engine="array")`` answer (cold or warm
      cache, either parity tenant) is a correctness bug and always fails;
    * **error replies** — the bench runs with wide-open admission limits,
      so *any* error reply means the pipeline dropped or mis-served a
      request; always fails;
    * **floor breach** — served/baseline decisions/s below the payload's
      committed ``speedup_floor``; the ratio is within-run (both sides
      measured on the same machine in the same process), so it transfers
      across machines and always fails;
    * **speedup / coalescing collapse** — the within-run speedup or the
      requests-per-search coalescing ratio dropping beyond ``factor``
      against the committed baseline;
    * **throughput / latency collapse** (``strict=True`` only) — absolute
      served decisions/s and p99 milliseconds against the baseline
      machine's.
    """
    if factor <= 1.0:
        raise ValueError(f"factor must exceed 1.0, got {factor}")
    problems: list[str] = []
    cur = current.get("serve")
    if cur is None:
        return ["serve missing from current payload"]
    if cur.get("parity_ok") is False:
        problems.append("served vs direct-search parity broken in current payload")
    if cur.get("errors", 0):
        problems.append(
            f"{cur['errors']} error replies under wide-open admission limits"
        )
    floor = cur.get("speedup_floor")
    speedup = cur.get("speedup_vs_baseline")
    if floor is not None and speedup is not None and speedup < floor:
        problems.append(
            f"served/baseline speedup below committed floor: "
            f"{speedup:.1f}x < {floor:g}x"
        )
    base = baseline.get("serve")
    if base is None:
        problems.append("serve missing from baseline payload")
        return problems
    if speedup is None:
        problems.append("speedup_vs_baseline missing from current payload")
    elif speedup * factor < base["speedup_vs_baseline"]:
        problems.append(
            f"served/baseline speedup regressed >{factor:g}x: "
            f"{base['speedup_vs_baseline']:.1f}x -> {speedup:.1f}x"
        )
    if cur["coalesce_ratio"] * factor < base["coalesce_ratio"]:
        problems.append(
            f"coalescing ratio regressed >{factor:g}x: "
            f"{base['coalesce_ratio']:.0f} -> "
            f"{cur['coalesce_ratio']:.0f} requests/search"
        )
    if strict:
        if cur["decisions_per_s"] * factor < base["decisions_per_s"]:
            problems.append(
                f"served throughput regressed >{factor:g}x: "
                f"{base['decisions_per_s']:.0f} -> "
                f"{cur['decisions_per_s']:.0f} decisions/s"
            )
        if cur["p99_ms"] > base["p99_ms"] * factor:
            problems.append(
                f"served p99 latency regressed >{factor:g}x: "
                f"{base['p99_ms']:.1f} -> {cur['p99_ms']:.1f} ms"
            )
    return problems


def format_problems(problems: list[str]) -> str:
    """Human-readable verdict for CI logs."""
    if not problems:
        return "perf gate: OK"
    lines = ["perf gate: REGRESSION DETECTED"]
    lines += [f"  - {p}" for p in problems]
    return "\n".join(lines)
