"""Regression gate over ``BENCH_partition_perf.json`` payloads.

The perf-smoke CI job records the scalar-vs-batch partition benchmark as a
JSON payload (see ``benchmarks/test_bench_partition_perf.py``) and the repo
commits the last known-good record.  This module compares a fresh payload
against that baseline and reports what regressed:

* **decision drift** — either engine choosing a different configuration is
  a correctness bug, never noise, and always fails;
* **speedup collapse** — the batch/scalar speedup is a within-run ratio,
  so it transfers across machines; a drop beyond ``factor`` (default 2×)
  fails;
* **throughput collapse** (``strict=True`` only) — absolute
  ``configs_per_s`` per engine; off by default because wall-clock rates do
  not transfer between the machine that committed the baseline and the CI
  runner.
"""

from __future__ import annotations

from typing import Any

__all__ = ["check_regression", "format_problems"]


def check_regression(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    factor: float = 2.0,
    strict: bool = False,
) -> list[str]:
    """Problems in ``current`` relative to ``baseline`` (empty = pass)."""
    if factor <= 1.0:
        raise ValueError(f"factor must exceed 1.0, got {factor}")
    problems: list[str] = []
    for engine, base in baseline.get("engines", {}).items():
        cur = current.get("engines", {}).get(engine)
        if cur is None:
            problems.append(f"engine {engine!r} missing from current payload")
            continue
        if cur["decision"] != base["decision"]:
            problems.append(
                f"{engine} decision drifted: {base['decision']} -> {cur['decision']}"
            )
        if strict and cur["configs_per_s"] * factor < base["configs_per_s"]:
            problems.append(
                f"{engine} throughput regressed >{factor:g}x: "
                f"{base['configs_per_s']:.0f} -> {cur['configs_per_s']:.0f} configs/s"
            )
    base_speedup = baseline.get("speedup_batch_over_scalar")
    cur_speedup = current.get("speedup_batch_over_scalar")
    if base_speedup is not None:
        if cur_speedup is None:
            problems.append("speedup_batch_over_scalar missing from current payload")
        elif cur_speedup * factor < base_speedup:
            problems.append(
                f"batch/scalar speedup regressed >{factor:g}x: "
                f"{base_speedup:.1f}x -> {cur_speedup:.1f}x"
            )
    return problems


def format_problems(problems: list[str]) -> str:
    """Human-readable verdict for CI logs."""
    if not problems:
        return "perf gate: OK"
    lines = ["perf gate: REGRESSION DETECTED"]
    lines += [f"  - {p}" for p in problems]
    return "\n".join(lines)
