"""Instruction-rate benchmarking (the paper's ``S_i`` measurement).

The paper obtained ``S_i ≈ 0.3`` µs (Sparc2) and ``0.6`` µs (IPC) as "an
average obtained by benchmarking several floating point operations".  We
reproduce that methodology on the simulated nodes: time a known operation
count on one processor of each cluster and divide.  On an unloaded node the
measurement recovers the spec exactly; under load it recovers the
effective (load-adjusted) rate, which is what the general partitioning model
wants to feed into Eq 4.
"""

from __future__ import annotations

from typing import Sequence

from repro.benchmarking.costfuncs import LinearByteCost
from repro.benchmarking.fitting import fit_linear_byte_cost
from repro.benchmarking.microbench import Workbench
from repro.hardware.processor import OpKind
from repro.units import msec_to_usec

__all__ = [
    "benchmark_instruction_rate",
    "benchmark_all_clusters",
    "benchmark_coercion_cost",
]


def benchmark_instruction_rate(
    workbench: Workbench,
    cluster: str,
    *,
    kind: OpKind = "fp",
    ops_per_trial: int = 1_000_000,
    trials: int = 3,
    load_adjusted: bool = False,
) -> float:
    """Measured µs/op of one node of ``cluster`` (the paper's ``S_i``).

    Runs ``trials`` timed loops of ``ops_per_trial`` operations on a fresh
    simulated node each time and averages.
    """
    if trials < 1 or ops_per_trial < 1:
        raise ValueError("trials and ops_per_trial must be positive")
    total_usec = 0.0
    for _ in range(trials):
        net, _mmps = workbench.fresh()
        proc = net.cluster(cluster).processors[0]

        def body():
            start = net.sim.now
            duration = proc.compute_time_ms(ops_per_trial, kind, load_adjusted=load_adjusted)
            yield net.sim.timeout(duration)
            return net.sim.now - start

        elapsed_ms = net.sim.run_process(body())
        total_usec += msec_to_usec(elapsed_ms)
    return total_usec / (trials * ops_per_trial)


def benchmark_all_clusters(
    workbench: Workbench,
    clusters: Sequence[str],
    *,
    kind: OpKind = "fp",
    ops_per_trial: int = 1_000_000,
    trials: int = 3,
) -> dict[str, float]:
    """``S_i`` for every listed cluster, as a name→µs/op mapping."""
    return {
        name: benchmark_instruction_rate(
            workbench, name, kind=kind, ops_per_trial=ops_per_trial, trials=trials
        )
        for name in clusters
    }


def benchmark_coercion_cost(
    workbench: Workbench,
    src_cluster: str,
    dst_cluster: str,
    b_values: Sequence[int] = (256, 1024, 2400, 4800),
) -> LinearByteCost:
    """Measure ``T_coerce[C_i, C_j](b)`` by timing conversions locally.

    The paper benchmarks coercion offline like any other cost.  The real
    MMPS would time its XDR decode routine on the destination host; here we
    time the message layer's conversion path for messages of each size on a
    destination-cluster node, and fit the per-byte penalty.  Returns a zero
    function when the two clusters share a data format.
    """
    samples = []
    for b in b_values:
        net, mmps = workbench.fresh()
        src_spec = net.cluster(src_cluster).spec
        dst_proc = net.cluster(dst_cluster).processors[0]
        cost = mmps.coercion.cost_ms(src_spec.data_format, dst_proc.spec, b)

        def convert(cost_ms=cost):
            start = net.sim.now
            yield net.sim.timeout(cost_ms)
            return net.sim.now - start

        samples.append((b, net.sim.run_process(convert())))
    return fit_linear_byte_cost(src_cluster, dst_cluster, "coerce", samples)
