"""Cost-function value types: Eq 1 communication costs, router, coercion.

A :class:`CommCostFunction` is the paper's Eq 1,

    ``T_comm[C_i, τ](b, p) = c1 + c2·p + b·(c3 + c4·p)``,

for one (cluster, topology) pair.  :class:`LinearByteCost` covers the
per-byte router and coercion penalties ``T_router``/``T_coerce``.

The paper notes that for small ``p`` a fitted bandwidth coefficient
``c3 + c4·p`` can turn negative (their IPC cluster at ``P2 = 2``); taking its
**absolute value** is "a very good approximation to the actual cost".  We
implement the same quirk, controlled by ``abs_bandwidth_quirk``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CommCostFunction", "LinearByteCost"]


@dataclass(frozen=True)
class CommCostFunction:
    """Eq 1 for one cluster and topology, in milliseconds.

    Attributes
    ----------
    c1, c2:
        Latency constants: fixed and per-processor.
    c3, c4:
        Bandwidth constants: per-byte and per-byte-per-processor.
    abs_bandwidth_quirk:
        Apply ``|c3 + c4·p|`` as the per-byte coefficient (paper §6).
    r_squared:
        Goodness of the fit that produced the constants (1.0 if exact).
    """

    cluster: str
    topology: str
    c1: float
    c2: float
    c3: float
    c4: float
    abs_bandwidth_quirk: bool = True
    r_squared: float = 1.0
    n_samples: int = 0

    def evaluate(self, b: float, p: int) -> float:
        """Per-cycle communication cost for ``p`` processors, ``b``-byte messages.

        A lone processor has no one to exchange with: cost is 0 for p <= 1.
        """
        if p <= 1:
            return 0.0
        if b < 0:
            raise ValueError(f"message size must be non-negative, got {b}")
        latency = self.c1 + self.c2 * p
        per_byte = self.c3 + self.c4 * p
        if self.abs_bandwidth_quirk:
            per_byte = abs(per_byte)
        return latency + b * per_byte

    def as_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "cluster": self.cluster,
            "topology": self.topology,
            "c1": self.c1,
            "c2": self.c2,
            "c3": self.c3,
            "c4": self.c4,
            "abs_bandwidth_quirk": self.abs_bandwidth_quirk,
            "r_squared": self.r_squared,
            "n_samples": self.n_samples,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CommCostFunction":
        """Inverse of :meth:`as_dict`."""
        return cls(**data)


@dataclass(frozen=True)
class LinearByteCost:
    """A per-message cost linear in the byte count: ``a + s·b`` ms.

    Used for both ``T_router[C_i, C_j](b)`` and ``T_coerce[C_i, C_j](b)``.
    """

    src: str
    dst: str
    kind: str  # "router" | "coerce"
    intercept_ms: float
    slope_ms_per_byte: float
    r_squared: float = 1.0
    n_samples: int = 0

    def evaluate(self, b: float) -> float:
        """Cost of one ``b``-byte message crossing this boundary."""
        if b < 0:
            raise ValueError(f"message size must be non-negative, got {b}")
        return self.intercept_ms + self.slope_ms_per_byte * b

    def as_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "src": self.src,
            "dst": self.dst,
            "kind": self.kind,
            "intercept_ms": self.intercept_ms,
            "slope_ms_per_byte": self.slope_ms_per_byte,
            "r_squared": self.r_squared,
            "n_samples": self.n_samples,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LinearByteCost":
        """Inverse of :meth:`as_dict`."""
        return cls(**data)
