"""Offline benchmarking and cost-function fitting (paper §3).

Runs topology-specific communication programs on the simulated network,
fits Eq 1 constants per (cluster, topology) by least squares, measures the
router/coercion per-byte penalties, benchmarks instruction rates, and stores
everything in a queryable, serializable :class:`CostDatabase`.
"""

from repro.benchmarking.cache import load_database, load_or_build, save_database
from repro.benchmarking.costfuncs import CommCostFunction, LinearByteCost
from repro.benchmarking.database import CostDatabase, build_cost_database
from repro.benchmarking.fitting import fit_comm_cost, fit_linear_byte_cost, r_squared
from repro.benchmarking.perfgate import (
    check_adaptive_regression,
    check_regression,
    format_problems,
)
from repro.benchmarking.microbench import (
    CycleSample,
    Workbench,
    measure_crossing_penalty,
    measure_cycle_time,
    sweep_cluster,
)
from repro.benchmarking.procbench import (
    benchmark_all_clusters,
    benchmark_coercion_cost,
    benchmark_instruction_rate,
)

__all__ = [
    "load_database",
    "load_or_build",
    "save_database",
    "benchmark_coercion_cost",
    "CommCostFunction",
    "LinearByteCost",
    "CostDatabase",
    "build_cost_database",
    "fit_comm_cost",
    "fit_linear_byte_cost",
    "r_squared",
    "check_adaptive_regression",
    "check_regression",
    "format_problems",
    "CycleSample",
    "Workbench",
    "measure_crossing_penalty",
    "measure_cycle_time",
    "sweep_cluster",
    "benchmark_all_clusters",
    "benchmark_instruction_rate",
]
