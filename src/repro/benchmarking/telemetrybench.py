"""Micro-benchmark: telemetry hot-path cost against the null registry.

The instrumentation contract (docs/observability.md) is that disabled
telemetry is effectively free — every instrumented module keeps instrument
*handles*, so the hot path is one method call that the shared
:data:`~repro.telemetry.NULL_REGISTRY` singletons turn into a no-op — and
that *enabled* telemetry stays cheap enough to leave on during benchmarks.
This module times the three hot-path operations (counter ``inc``, gauge
``set``, histogram ``observe``) for both registries and reports the
enabled/null per-op ratio.

The gate is the **ratio**, not the absolute nanoseconds: like the
batch/scalar and fast/event speedups gated by
:mod:`repro.benchmarking.perfgate`, a within-run ratio transfers between
the machine that committed the baseline and the CI runner, while absolute
per-op times do not.  ``benchmarks/test_bench_telemetry_overhead.py``
enforces :data:`OVERHEAD_BUDGET` directly and commits the payload as
``BENCH_telemetry_overhead.json`` for the regression gate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.telemetry import NULL_REGISTRY, MetricsRegistry

__all__ = [
    "OVERHEAD_BUDGET",
    "TelemetryOverheadResult",
    "run_overhead_bench",
    "telemetry_overhead_payload",
    "telemetry_overhead_report",
]

#: Ceiling on the enabled/null counter-inc per-op ratio.  Generous on
#: purpose: the point is catching an accidental O(instruments) lookup or
#: allocation creeping into ``inc()``, not shaving nanoseconds.
OVERHEAD_BUDGET = 25.0


@dataclass(frozen=True)
class TelemetryOverheadResult:
    """Best-of-``repeats`` per-op timings for both registries."""

    iterations: int
    repeats: int
    null_inc_ns: float
    enabled_inc_ns: float
    enabled_set_ns: float
    enabled_observe_ns: float
    budget: float

    @property
    def overhead_ratio(self) -> float:
        """Enabled/null counter-inc cost ratio — the gated quantity."""
        return self.enabled_inc_ns / self.null_inc_ns

    @property
    def within_budget(self) -> bool:
        return self.overhead_ratio <= self.budget


def _ns_per_op(op: Callable[[], Any], iterations: int, repeats: int) -> float:
    """Best-of-``repeats`` nanoseconds per call of ``op`` in a tight loop."""
    best = float("inf")
    loop = range(iterations)
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in loop:
            op()
        best = min(best, time.perf_counter() - t0)
    return best / iterations * 1e9


def run_overhead_bench(
    *, iterations: int = 200_000, repeats: int = 5, budget: float = OVERHEAD_BUDGET
) -> TelemetryOverheadResult:
    """Time the hot-path operations the instrumented modules actually run."""
    enabled = MetricsRegistry()
    null_inc = NULL_REGISTRY.counter("bench.null").inc
    live_inc = enabled.counter("bench.live").inc
    live_set = enabled.gauge("bench.gauge").set
    live_observe = enabled.histogram("bench.hist").observe
    return TelemetryOverheadResult(
        iterations=iterations,
        repeats=repeats,
        null_inc_ns=_ns_per_op(null_inc, iterations, repeats),
        enabled_inc_ns=_ns_per_op(live_inc, iterations, repeats),
        enabled_set_ns=_ns_per_op(lambda: live_set(42.0), iterations, repeats),
        enabled_observe_ns=_ns_per_op(lambda: live_observe(7.0), iterations, repeats),
        budget=budget,
    )


def telemetry_overhead_payload(result: TelemetryOverheadResult) -> dict[str, Any]:
    """The machine-readable record committed as ``BENCH_telemetry_overhead.json``."""
    return {
        "telemetry_overhead": {
            "iterations": result.iterations,
            "repeats": result.repeats,
            "null_inc_ns": round(result.null_inc_ns, 2),
            "enabled_inc_ns": round(result.enabled_inc_ns, 2),
            "enabled_set_ns": round(result.enabled_set_ns, 2),
            "enabled_observe_ns": round(result.enabled_observe_ns, 2),
            "overhead_ratio": round(result.overhead_ratio, 3),
            "budget": result.budget,
            "within_budget": result.within_budget,
        }
    }


def telemetry_overhead_report(result: TelemetryOverheadResult) -> str:
    """Human-readable rendering for ``benchmarks/out/``."""
    verdict = "OK" if result.within_budget else "OVER BUDGET"
    return "\n".join(
        [
            "telemetry hot-path overhead "
            f"({result.iterations} iterations, best of {result.repeats})",
            f"  null counter.inc()      {result.null_inc_ns:8.1f} ns/op",
            f"  enabled counter.inc()   {result.enabled_inc_ns:8.1f} ns/op",
            f"  enabled gauge.set()     {result.enabled_set_ns:8.1f} ns/op",
            f"  enabled hist.observe()  {result.enabled_observe_ns:8.1f} ns/op",
            f"  enabled/null ratio      {result.overhead_ratio:8.2f}x "
            f"(budget {result.budget:g}x): {verdict}",
        ]
    )
