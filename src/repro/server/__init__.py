"""Partitioning-as-a-service: the multi-tenant asyncio decision server.

The paper's method is an offline, per-application decision; this package
turns it into a long-running service.  Many concurrent tenants send
partition requests — a workload spec plus per-cluster availability — as
newline-delimited JSON over TCP (or stdio) and get back the decision
vector and cycle estimate the offline search would have produced, served
from one shared :class:`~repro.partition.engine.DecisionEngine` per
workload behind a coalescing request batcher.

Modules
-------
* :mod:`repro.server.protocol` — the NDJSON wire format (requests,
  decision replies, typed error replies) and the workload registry;
* :mod:`repro.server.admission` — load shedding: in-flight/queue caps and
  per-tenant token-bucket rate limits;
* :mod:`repro.server.batcher` — the tick coalescer: one engine evaluation
  per distinct (workload, pool) in a batch, fanned out per tenant;
* :mod:`repro.server.service` — the asyncio TCP server with graceful
  drain (SIGTERM) and the optional ``/metrics`` HTTP endpoint
  (:mod:`repro.server.metricshttp`);
* :mod:`repro.server.loadgen` — the load-generator client;
* :mod:`repro.server.servebench` — the ``repro bench-serve`` harness
  behind ``BENCH_serve_perf.json``.

Determinism: the package sits in the ``sim-determinism`` lint scope —
wall-clock reads are injected (never called inline), so served estimates
remain pure functions of the request and can never absorb host time.
"""

from repro.server.admission import AdmissionController, AdmissionLimits
from repro.server.batcher import BatchStats, Coalescer, EnginePool
from repro.server.protocol import (
    PROTOCOL_VERSION,
    WORKLOADS,
    ServeRequest,
    WorkloadSpec,
    decision_reply,
    decode_request,
    encode_line,
    error_reply,
    restrict_pool,
)
from repro.server.service import PartitionServer, ServerConfig, resolve_pool

__all__ = [
    "AdmissionController",
    "AdmissionLimits",
    "BatchStats",
    "Coalescer",
    "EnginePool",
    "PROTOCOL_VERSION",
    "PartitionServer",
    "ServeRequest",
    "ServerConfig",
    "WORKLOADS",
    "WorkloadSpec",
    "decision_reply",
    "decode_request",
    "encode_line",
    "error_reply",
    "resolve_pool",
    "restrict_pool",
]
