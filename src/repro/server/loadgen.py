"""The load-generator client for the decision server.

Simulates many logical clients (tenants firing request streams)
multiplexed over a small number of TCP connections — 10k logical
clients must not need 10k file descriptors.  Each logical client walks
a deterministic request pattern: the pattern index is
``(client_index * 7 + request_index) % len(patterns)``, so the mix is
reproducible without any RNG (this module sits in the sim-determinism
lint scope) while adjacent clients still interleave different
workloads within one batch tick.

Latency accounting is per *request*: send time to reply time on the
shared connection, measured with the injected host clock.  Replies are
matched by request ``id``, so pipelining depth does not skew the
numbers.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.server.protocol import encode_line
from repro.units import seconds_to_msec

__all__ = ["LoadPattern", "LoadResult", "default_patterns", "run_load"]


@dataclass(frozen=True)
class LoadPattern:
    """One request shape logical clients cycle through."""

    app: str
    n: int
    overlap: bool = False
    cycles: int = 10
    #: Per-cluster counts, or ``None`` for the full pool.
    availability: Optional[Dict[str, int]] = None
    startup_ms: float = 0.0

    def request_obj(self, request_id: str, tenant: str) -> dict:
        obj: dict = {
            "id": request_id,
            "tenant": tenant,
            "workload": {
                "app": self.app,
                "n": self.n,
                "overlap": self.overlap,
                "cycles": self.cycles,
            },
        }
        if self.availability is not None:
            obj["availability"] = dict(self.availability)
        if self.startup_ms:
            obj["startup_ms"] = self.startup_ms
        return obj


def default_patterns(
    pool_counts: Sequence[Tuple[str, int]], *, n: int = 600
) -> list[LoadPattern]:
    """The bench's workload mix over a given pool.

    A handful of distinct shapes: three apps over the full pool plus two
    restricted availabilities, enough that one tick holds several
    coalescible groups rather than one.
    """
    patterns = [
        LoadPattern(app="stencil", n=n),
        LoadPattern(app="sor", n=n),
        LoadPattern(app="stencil", n=max(64, n // 2)),
        LoadPattern(app="stencil", n=n, overlap=True),
    ]
    if pool_counts:
        # Half the pool in every cluster.
        halved = {name: max(1, count // 2) for name, count in pool_counts}
        patterns.append(LoadPattern(app="stencil", n=n, availability=halved))
    if len(pool_counts) > 1:
        # Only the first cluster.
        name, count = pool_counts[0]
        patterns.append(
            LoadPattern(app="sor", n=n, availability={name: count})
        )
    return patterns


@dataclass
class LoadResult:
    """Aggregated outcome of one load run."""

    requests: int = 0
    ok: int = 0
    errors: int = 0
    #: error kind -> count (sheds, bad requests, ...).
    error_kinds: Dict[str, int] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def decisions_per_s(self) -> float:
        return self.ok / self.wall_s if self.wall_s > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        """The q-th percentile (0..100) of request latency, ms."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def merge(self, other: "LoadResult") -> None:
        self.requests += other.requests
        self.ok += other.ok
        self.errors += other.errors
        for kind, count in other.error_kinds.items():
            self.error_kinds[kind] = self.error_kinds.get(kind, 0) + count
        self.latencies_ms.extend(other.latencies_ms)


async def _drive_connection(
    host: str,
    port: int,
    jobs: Sequence[Tuple[int, int]],
    patterns: Sequence[LoadPattern],
    result: LoadResult,
    *,
    clock: Callable[[], float],
    pipeline_depth: int,
) -> None:
    """Send every (client, request) job on one connection, pipelined.

    ``pipeline_depth`` bounds unreplied requests in flight so the server's
    admission control sees sustained — not instantaneous — load.
    """
    reader, writer = await asyncio.open_connection(host, port)
    sent_at: Dict[str, float] = {}
    window = asyncio.Semaphore(pipeline_depth)
    done = asyncio.Event()
    expected = len(jobs)

    async def _read_replies() -> None:
        received = 0
        while received < expected:
            line = await reader.readline()
            if not line:
                break
            reply = json.loads(line)
            received += 1
            t_sent = sent_at.pop(reply.get("id"), None)
            if t_sent is not None:
                result.latencies_ms.append(seconds_to_msec(clock() - t_sent))
            if reply.get("ok"):
                result.ok += 1
            else:
                result.errors += 1
                kind = (reply.get("error") or {}).get("kind", "unknown")
                result.error_kinds[kind] = result.error_kinds.get(kind, 0) + 1
            window.release()
        done.set()

    read_task = asyncio.create_task(_read_replies())
    try:
        for client_index, request_index in jobs:
            await window.acquire()
            pattern = patterns[
                (client_index * 7 + request_index) % len(patterns)
            ]
            request_id = f"c{client_index}-r{request_index}"
            tenant = f"tenant{client_index % 16}"
            sent_at[request_id] = clock()
            writer.write(encode_line(pattern.request_obj(request_id, tenant)))
            result.requests += 1
            await writer.drain()
        await done.wait()
    finally:
        read_task.cancel()
        try:
            await read_task
        except asyncio.CancelledError:
            pass
        try:
            writer.close()
            await writer.wait_closed()
        except ConnectionError:
            pass


async def run_load(
    host: str,
    port: int,
    *,
    clients: int,
    requests_per_client: int,
    patterns: Sequence[LoadPattern],
    connections: int = 64,
    pipeline_depth: int = 32,
    clock: Callable[[], float] = time.perf_counter,
) -> LoadResult:
    """Drive the server with ``clients`` logical clients and aggregate.

    Logical clients are sharded round-robin over ``connections`` real TCP
    connections; each connection interleaves its clients' request streams
    (client 0's request 0, client C's request 0, ..., client 0's request
    1, ...) so concurrent *distinct* clients — not one client's burst —
    share each batch tick, mirroring real multi-tenant arrival order.
    """
    if not patterns:
        raise ValueError("need at least one load pattern")
    connections = max(1, min(connections, clients))
    shards: List[List[Tuple[int, int]]] = [[] for _ in range(connections)]
    for request_index in range(requests_per_client):
        for client_index in range(clients):
            shards[client_index % connections].append(
                (client_index, request_index)
            )
    total = LoadResult()
    per_conn = [LoadResult() for _ in shards]
    t0 = clock()
    await asyncio.gather(
        *(
            _drive_connection(
                host,
                port,
                shard,
                patterns,
                res,
                clock=clock,
                pipeline_depth=pipeline_depth,
            )
            for shard, res in zip(shards, per_conn)
            if shard
        )
    )
    total.wall_s = clock() - t0
    for res in per_conn:
        total.merge(res)
    return total
