"""Admission control for the decision server.

Three independent guards, each mapping to a typed backpressure reply:

* **in-flight cap** — admitted requests not yet replied to; the hard
  bound on concurrently held futures (kind ``overloaded``);
* **queue depth** — requests waiting in the batcher's current tick; a
  deep queue means the coalescer is falling behind (kind ``overloaded``);
* **per-tenant token bucket** — one noisy tenant cannot starve the rest:
  each tenant refills at ``tenant_rate`` requests/s up to
  ``tenant_burst`` tokens (kind ``rate-limited``, with a computed
  ``retry_after_ms`` hint).

Shed replies are cheap by design: a rejected request never touches an
engine, so the server degrades by answering "come back later" fast
instead of answering slowly for everyone.

Determinism: the controller never reads a wall clock itself — the bucket
clock is injected as a callable (``clock=time.monotonic`` by reference),
so tests drive it manually and the sim-determinism lint rule holds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.units import seconds_to_msec

__all__ = ["AdmissionLimits", "AdmissionController", "Rejection"]


@dataclass(frozen=True)
class AdmissionLimits:
    """The knobs (see ``docs/serving.md`` for capacity guidance)."""

    #: Admitted-but-unanswered requests across all connections.
    max_inflight: int = 512
    #: Requests the batcher may hold for the next tick.
    max_queue: int = 2048
    #: Per-tenant sustained requests/s; ``0`` disables rate limiting.
    tenant_rate: float = 0.0
    #: Per-tenant burst allowance (bucket capacity), in requests.
    tenant_burst: float = 16.0
    #: The retry hint attached to ``overloaded`` sheds (ms).
    shed_retry_ms: float = 20.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.tenant_rate < 0:
            raise ValueError(f"tenant_rate must be >= 0, got {self.tenant_rate}")
        if self.tenant_burst < 1:
            raise ValueError(f"tenant_burst must be >= 1, got {self.tenant_burst}")


@dataclass(frozen=True)
class Rejection:
    """Why a request was shed; maps 1:1 onto the wire error object."""

    kind: str  #: ``"overloaded"`` or ``"rate-limited"``
    message: str
    retry_after_ms: Optional[float] = None


class AdmissionController:
    """Stateful gate in front of the batcher.

    ``clock`` is a zero-argument callable returning seconds (monotonic);
    it is only consulted when rate limiting is enabled.
    """

    def __init__(
        self,
        limits: Optional[AdmissionLimits] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.limits = limits if limits is not None else AdmissionLimits()
        self._clock = clock
        self.inflight = 0
        #: tenant -> (tokens, last refill time in seconds).
        self._buckets: Dict[str, tuple[float, float]] = {}
        self.admitted = 0
        self.shed_overloaded = 0
        self.shed_rate_limited = 0

    def _take_token(self, tenant: str) -> Optional[float]:
        """Consume one token; returns the wait (s) until a token exists
        when the bucket is empty, else ``None``."""
        rate = self.limits.tenant_rate
        now = self._clock()
        tokens, last = self._buckets.get(tenant, (self.limits.tenant_burst, now))
        tokens = min(self.limits.tenant_burst, tokens + (now - last) * rate)
        if tokens < 1.0:
            self._buckets[tenant] = (tokens, now)
            return (1.0 - tokens) / rate
        self._buckets[tenant] = (tokens - 1.0, now)
        return None

    def try_admit(self, tenant: str, *, queued: int) -> Optional[Rejection]:
        """Admit (returns ``None``) or shed (returns the typed rejection).

        On admission the in-flight count is charged; the caller must pair
        every admitted request with exactly one :meth:`release`.
        """
        if self.limits.tenant_rate > 0:
            wait_s = self._take_token(tenant)
            if wait_s is not None:
                self.shed_rate_limited += 1
                return Rejection(
                    kind="rate-limited",
                    message=(
                        f"tenant {tenant!r} over its "
                        f"{self.limits.tenant_rate:g} req/s rate"
                    ),
                    retry_after_ms=seconds_to_msec(wait_s),
                )
        if self.inflight >= self.limits.max_inflight:
            self.shed_overloaded += 1
            return Rejection(
                kind="overloaded",
                message=f"{self.inflight} requests in flight (cap "
                f"{self.limits.max_inflight})",
                retry_after_ms=self.limits.shed_retry_ms,
            )
        if queued >= self.limits.max_queue:
            self.shed_overloaded += 1
            return Rejection(
                kind="overloaded",
                message=f"{queued} requests queued for the next batch tick "
                f"(cap {self.limits.max_queue})",
                retry_after_ms=self.limits.shed_retry_ms,
            )
        self.inflight += 1
        self.admitted += 1
        return None

    def release(self) -> None:
        """One admitted request finished (replied or failed)."""
        if self.inflight <= 0:
            raise RuntimeError("release() without a matching admit")
        self.inflight -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AdmissionController inflight={self.inflight} "
            f"admitted={self.admitted} shed={self.shed_overloaded}"
            f"+{self.shed_rate_limited}>"
        )
