"""The optional ``/metrics`` endpoint: Prometheus text over asyncio HTTP.

Deliberately tiny — one GET route, HTTP/1.0 semantics (every response
closes the connection), no dependency beyond asyncio.  The body is the
server's :class:`~repro.telemetry.metrics.MetricsRegistry` snapshot
rendered by :func:`repro.telemetry.export.prometheus_text`, which the
repo's own :func:`~repro.telemetry.export.validate_prometheus` lints in
the test suite.

No ``Date`` header is emitted: this module is in the sim-determinism
lint scope and the endpoint's output should be a pure function of the
registry anyway.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple

from repro.telemetry.export import prometheus_text

__all__ = ["MetricsHTTPServer"]

_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _response(status: str, body: str, content_type: str = _CONTENT_TYPE) -> bytes:
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.0 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + payload


class MetricsHTTPServer:
    """Serves ``GET /metrics`` for one metrics registry."""

    def __init__(self, registry) -> None:
        self.registry = registry
        self._server: Optional["asyncio.base_events.Server"] = None

    def render(self) -> str:
        """The exposition body (also used directly by tests and the CLI)."""
        snapshot = self.registry.snapshot(None)
        return prometheus_text(snapshot["metrics"])

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("metrics server already started")
        self._server = await asyncio.start_server(self._handle, host, port)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            # Drain headers until the blank line; we never use them.
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("ascii", errors="replace").split()
            if len(parts) < 2 or parts[0] != "GET":
                writer.write(
                    _response("405 Method Not Allowed", "only GET is supported\n")
                )
            elif parts[1].split("?", 1)[0] not in ("/metrics", "/"):
                writer.write(_response("404 Not Found", "try /metrics\n"))
            else:
                writer.write(_response("200 OK", self.render()))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
