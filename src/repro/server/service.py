"""The asyncio decision server: NDJSON over TCP, batch ticks, drain.

Request lifecycle::

    readline -> decode + restrict pool -> admission gate -> pending tick
      -> (batch window elapses) -> Coalescer.run -> reply futures resolve
      -> write reply line

Each connection may pipeline: every request line spawns a processing
task, and replies (carrying the request ``id``) are written as they
resolve under a per-connection write lock — a slow search never blocks
the socket's read loop.

Shutdown is graceful by contract: :meth:`PartitionServer.request_shutdown`
(wired to SIGTERM/SIGINT by :meth:`serve_until_shutdown`) stops accepting
connections, answers new requests with a typed ``draining`` reply, lets
every admitted request finish, then resolves.  ``max_requests`` arms the
same path after a fixed number of served requests — the CI smoke job's
self-terminating mode.

Determinism: this module is in the ``sim-determinism`` lint scope, so
wall clocks are *injected* (``clock=time.perf_counter`` passes the
callable by reference; the rule forbids inline calls).  The only times
recorded are host-domain service latencies — simulated estimates flow
through untouched from the engines.
"""

from __future__ import annotations

import asyncio
import signal
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

from repro.errors import PartitionError, ServeError
from repro.partition.available import (
    ClusterResources,
    gather_available_resources,
)
from repro.server.admission import AdmissionController, AdmissionLimits
from repro.server.batcher import BatchItem, Coalescer, EnginePool
from repro.server.protocol import (
    decode_request,
    encode_line,
    error_reply,
    restrict_pool,
)
from repro.telemetry import NULL_REGISTRY
from repro.units import msec_to_seconds, seconds_to_msec

__all__ = ["PartitionServer", "ServerConfig", "resolve_pool"]


@dataclass(frozen=True)
class ServerConfig:
    """Service knobs (``repro serve`` exposes each as a flag)."""

    #: How long a tick collects requests before the coalescer runs (ms).
    #: Larger windows coalesce more at the cost of added latency.
    batch_window_ms: float = 2.0
    limits: AdmissionLimits = field(default_factory=AdmissionLimits)
    #: Per-workload :class:`SearchCache` bound (``None`` = unbounded).
    cache_entries: Optional[int] = 4096
    #: Lowered workload engines kept alive (LRU).
    max_engines: int = 32
    #: Scope every cache to one logical-topology grouping.
    topology_fingerprint: Optional[str] = None
    #: Serve this many requests, then drain and stop (``None`` = forever).
    max_requests: Optional[int] = None

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ValueError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        if self.max_requests is not None and self.max_requests < 1:
            raise ValueError(
                f"max_requests must be >= 1, got {self.max_requests}"
            )


def resolve_pool(spec: str, *, seed: int = 0) -> tuple:
    """Build a named resource pool: ``(network, cost database)``.

    * ``"paper"`` — the Table 1 testbed (sparc2 + ipc) with the published
      cost functions;
    * ``"wide:K"`` — a :func:`~repro.hardware.presets.wide_area_network`
      of K logical sites (seeded);
    * ``"synthetic:A,B,C"`` — the perf bench's deterministic clusters of
      the given sizes.
    """
    if spec == "paper":
        from repro.experiments.paper import paper_cost_database
        from repro.hardware.presets import paper_testbed

        return paper_testbed(), paper_cost_database()
    if spec.startswith("wide:"):
        from repro.hardware.presets import (
            wide_area_cost_database,
            wide_area_network,
        )

        sites = int(spec.split(":", 1)[1])
        net = wide_area_network(sites, seed=seed)
        return net, wide_area_cost_database(net)
    if spec.startswith("synthetic:"):
        from repro.partition.perfbench import (
            synthetic_database,
            synthetic_network,
        )

        sizes = tuple(
            int(part) for part in spec.split(":", 1)[1].split(",") if part
        )
        net = synthetic_network(sizes)
        return net, synthetic_database([f"c{i}" for i in range(len(sizes))])
    raise ServeError(
        f"unknown pool spec {spec!r} (expected 'paper', 'wide:K', "
        f"or 'synthetic:A,B,C')",
        kind="internal",
    )


class PartitionServer:
    """One pool, many tenants: the batching NDJSON decision service."""

    def __init__(
        self,
        resources: Sequence[ClusterResources],
        cost_db,
        *,
        config: Optional[ServerConfig] = None,
        metrics=None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.base = tuple(resources)
        if not self.base:
            raise ServeError("server pool has no clusters", kind="internal")
        self.config = config if config is not None else ServerConfig()
        self.metrics = metrics
        self._clock = clock
        self.pool = EnginePool(
            cost_db,
            topology_fingerprint=self.config.topology_fingerprint,
            cache_entries=self.config.cache_entries,
            max_engines=self.config.max_engines,
            metrics=metrics,
        )
        self.coalescer = Coalescer(self.pool, metrics=metrics)
        self.admission = AdmissionController(self.config.limits, clock=clock)
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_requests = registry.counter(
            "serve.requests", domain="host", help="request lines received"
        )
        self._m_replies = registry.counter(
            "serve.replies", domain="host", help="decision replies written"
        )
        self._m_errors = registry.counter(
            "serve.errors", domain="host", help="typed error replies written"
        )
        self._m_shed = registry.counter(
            "serve.shed", domain="host", help="requests shed by admission control"
        )
        self._m_latency = registry.histogram(
            "serve.latency_ms",
            domain="host",
            help="request latency at the server (decode to reply), ms",
        )
        self._pending: list[tuple[BatchItem, "asyncio.Future"]] = []
        self._kick: Optional[asyncio.Event] = None
        self._shutdown_event: Optional[asyncio.Event] = None
        self._flush_task: Optional["asyncio.Task"] = None
        self._server: Optional["asyncio.base_events.Server"] = None
        self._conn_tasks: set = set()
        self._draining = False
        self.served = 0

    @classmethod
    def for_network(cls, network, cost_db, **kwargs) -> "PartitionServer":
        """A server over a network's full schedulable pool (threshold
        availability, like the offline experiments)."""
        return cls(gather_available_resources(network), cost_db, **kwargs)

    # -- lifecycle ---------------------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise ServeError("server already started", kind="internal")
        self._kick = asyncio.Event()
        self._shutdown_event = asyncio.Event()
        self._flush_task = asyncio.create_task(self._flush_loop())
        self._server = await asyncio.start_server(
            self._on_connection, host, port
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    def request_shutdown(self) -> None:
        """Arm the graceful drain (idempotent; signal-handler safe)."""
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def serve_until_shutdown(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        install_signals: bool = True,
        on_started: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        """Run until SIGTERM/SIGINT (or ``max_requests``), then drain."""
        bound = await self.start(host, port)
        if on_started is not None:
            on_started(*bound)
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, self.request_shutdown)
        try:
            await self._shutdown_event.wait()
        finally:
            await self.close()
            if install_signals:
                loop = asyncio.get_running_loop()
                for sig in (signal.SIGTERM, signal.SIGINT):
                    loop.remove_signal_handler(sig)

    async def drain(self) -> None:
        """Stop accepting, answer stragglers, wait out in-flight work."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        while self.admission.inflight > 0 or self._pending:
            if self._kick is not None:
                self._kick.set()
            await asyncio.sleep(0.005)

    async def close(self) -> None:
        """Graceful drain, then tear the flush task and connections down."""
        await self.drain()
        if self._flush_task is not None:
            self._flush_task.cancel()
            try:
                await self._flush_task
            except asyncio.CancelledError:
                pass
            self._flush_task = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()

    # -- connection handling -----------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        line_tasks: set = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                sub = asyncio.create_task(
                    self._process_line(line, writer, write_lock)
                )
                line_tasks.add(sub)
                sub.add_done_callback(line_tasks.discard)
            if line_tasks:
                await asyncio.gather(*line_tasks, return_exceptions=True)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            for sub in list(line_tasks):
                sub.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
            if task is not None:
                self._conn_tasks.discard(task)

    async def _send(self, writer, lock: "asyncio.Lock", obj: dict) -> None:
        async with lock:
            writer.write(encode_line(obj))
            await writer.drain()

    async def _process_line(self, line: bytes, writer, lock) -> None:
        t_start = self._clock()
        self._m_requests.inc()
        try:
            request = decode_request(line.decode("utf-8", errors="replace"))
        except ServeError as exc:
            self._m_errors.inc()
            await self._send(writer, lock, error_reply(None, exc.kind, str(exc)))
            return
        try:
            resources = restrict_pool(self.base, request.availability)
        except (ServeError, PartitionError) as exc:
            kind = exc.kind if isinstance(exc, ServeError) else "bad-request"
            self._m_errors.inc()
            await self._send(
                writer, lock, error_reply(request.id, kind, str(exc))
            )
            return
        if self._draining:
            self._m_errors.inc()
            await self._send(
                writer,
                lock,
                error_reply(
                    request.id, "draining", "server is shutting down"
                ),
            )
            return
        rejection = self.admission.try_admit(
            request.tenant, queued=len(self._pending)
        )
        if rejection is not None:
            self._m_shed.inc()
            self._m_errors.inc()
            await self._send(
                writer,
                lock,
                error_reply(
                    request.id,
                    rejection.kind,
                    rejection.message,
                    retry_after_ms=rejection.retry_after_ms,
                ),
            )
            return
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._pending.append((BatchItem(request, tuple(resources)), future))
        assert self._kick is not None
        self._kick.set()
        try:
            reply = await future
        finally:
            self.admission.release()
        if reply.get("ok"):
            self._m_replies.inc()
        else:
            self._m_errors.inc()
        await self._send(writer, lock, reply)
        self._m_latency.observe(seconds_to_msec(self._clock() - t_start))
        self.served += 1
        if (
            self.config.max_requests is not None
            and self.served >= self.config.max_requests
        ):
            self.request_shutdown()

    # -- batching ----------------------------------------------------------------

    async def _flush_loop(self) -> None:
        window_s = msec_to_seconds(self.config.batch_window_ms)
        assert self._kick is not None
        while True:
            await self._kick.wait()
            self._kick.clear()
            if window_s > 0:
                # The coalescing window: requests arriving while we sleep
                # join this tick.
                await asyncio.sleep(window_s)
            if not self._pending:
                continue
            batch = self._pending
            self._pending = []
            future_of = {id(item): future for item, future in batch}
            try:
                outcomes = self.coalescer.run([item for item, _ in batch])
            except Exception:
                # The coalescer maps per-request failures to typed replies
                # itself; anything escaping is a server bug — answer the
                # whole tick rather than strand its futures.
                outcomes = []
            for item, reply in outcomes:
                future = future_of.get(id(item))
                if future is not None and not future.done():
                    future.set_result(reply)
            # Belt-and-braces: never leave a future unresolved.
            for item, future in batch:
                if not future.done():
                    future.set_result(
                        error_reply(
                            item.request.id,
                            "internal",
                            "request fell out of its batch tick",
                        )
                    )
