"""The ``repro bench-serve`` harness behind ``BENCH_serve_perf.json``.

Shared by the CLI subcommand and ``benchmarks/test_bench_serve_perf.py``.
One run measures three things on the same pool and workload mix:

* **baseline** — the one-search-per-request cost: each distinct request
  shape in the mix is priced by a cold direct
  :func:`~repro.partition.heuristic.exhaustive_partition` call
  (``engine="array"``, no cache), and the mix-weighted mean gives the
  decisions/s a server *without* batching or caching could sustain;
* **served** — an in-process :class:`~repro.server.service.PartitionServer`
  driven by the load generator at ``clients`` logical clients; decisions/s,
  p50/p99 latency, and the coalescing ratio come from this run.  The
  committed :data:`SERVE_SPEEDUP_FLOOR` is a within-run invariant
  (served/baseline on the *same* machine in the *same* run), so the
  perfgate enforces it everywhere without wall-clock transfer problems;
* **parity** — every pattern in the mix is re-requested from a cold server
  and from the warm post-load server, under two different tenants each,
  and each reply must be bit-identical (counts, vector, ``T_c``) to the
  direct ``exhaustive_partition`` answer.  Coalescing and caching must buy
  throughput, never change a decision.

Wall clocks are injected (``clock=time.perf_counter`` by reference):
this package sits in the sim-determinism lint scope.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.errors import ServeError
from repro.partition.available import gather_available_resources
from repro.partition.heuristic import exhaustive_partition
from repro.server.admission import AdmissionLimits
from repro.server.loadgen import (
    LoadPattern,
    LoadResult,
    default_patterns,
    run_load,
)
from repro.server.protocol import WorkloadSpec, encode_line, restrict_pool
from repro.server.service import PartitionServer, ServerConfig, resolve_pool
from repro.units import seconds_to_msec

__all__ = [
    "SERVE_SPEEDUP_FLOOR",
    "DEFAULT_POOL",
    "DEFAULT_N",
    "DEFAULT_CLIENTS",
    "QUICK_CLIENTS",
    "ServeBench",
    "run_serve_bench",
    "serve_report",
    "serve_payload",
]

#: Committed within-run floor: the served pipeline must deliver at least
#: this many times the one-search-per-request baseline's decisions/s.
SERVE_SPEEDUP_FLOOR = 5.0

#: Three synthetic clusters of 32: a cold search costs ~35k evaluations,
#: so the baseline is honestly search-dominated, not transport-dominated.
DEFAULT_POOL = "synthetic:32,32,32"

#: STEN-1 problem size for the request mix.
DEFAULT_N = 600

#: Logical clients the committed record simulates.
DEFAULT_CLIENTS = 10_000

#: What ``repro bench-serve --quick`` (the CI smoke job) simulates.
QUICK_CLIENTS = 1_000


@dataclass(frozen=True)
class ServeBench:
    """One full bench run: baseline, served, and parity blocks."""

    pool: str
    n: int
    clients: int
    requests_per_client: int
    connections: int
    batch_window_ms: float
    speedup_floor: float
    #: Mix-weighted mean cold-search seconds per request.
    baseline_mean_s: float
    baseline_decisions_per_s: float
    requests: int
    ok: int
    errors: int
    wall_s: float
    decisions_per_s: float
    p50_ms: float
    p99_ms: float
    searches: int
    memo_hits: int
    fanned_out: int
    coalesce_ratio: float
    parity_instances: int
    parity_ok: Optional[bool]  #: ``None`` when the parity block was skipped.

    @property
    def speedup_vs_baseline(self) -> float:
        """Served over one-search-per-request decisions/s (within-run)."""
        if self.baseline_decisions_per_s <= 0:
            return 0.0
        return self.decisions_per_s / self.baseline_decisions_per_s


def _pattern_spec(pattern: LoadPattern) -> WorkloadSpec:
    return WorkloadSpec(
        app=pattern.app,
        n=pattern.n,
        overlap=pattern.overlap,
        cycles=pattern.cycles,
    )


def _direct_decision(pattern: LoadPattern, base_resources, cost_db):
    """The reference answer: one cold uncached array search."""
    comp = _pattern_spec(pattern).build()
    restricted = restrict_pool(base_resources, pattern.availability)
    return exhaustive_partition(
        comp,
        restricted,
        cost_db,
        startup_ms=pattern.startup_ms,
        engine="array",
    )


def _mix_frequencies(
    patterns: Sequence[LoadPattern], clients: int, requests_per_client: int
) -> list[int]:
    """How often each pattern occurs in the load run (same arithmetic
    assignment the load generator uses)."""
    freq = [0] * len(patterns)
    for client_index in range(clients):
        for request_index in range(requests_per_client):
            freq[(client_index * 7 + request_index) % len(patterns)] += 1
    return freq


def _bench_limits() -> AdmissionLimits:
    """Wide-open admission: the bench measures the decision pipeline, not
    the shedding policy (which has its own tests)."""
    return AdmissionLimits(max_inflight=1_000_000, max_queue=1_000_000)


async def _parity_over_wire(
    host: str,
    port: int,
    patterns: Sequence[LoadPattern],
    expected,
) -> int:
    """Request every pattern under two tenants; compare bit-exactly.

    Returns the instance count, raises :class:`ServeError` on mismatch.
    """
    reader, writer = await asyncio.open_connection(host, port)
    instances = 0
    try:
        for i, (pattern, reference) in enumerate(zip(patterns, expected)):
            for tenant in ("parity-a", "parity-b"):
                request_id = f"par{i}-{tenant}"
                writer.write(
                    encode_line(pattern.request_obj(request_id, tenant))
                )
                await writer.drain()
                reply = json.loads(await reader.readline())
                if not reply.get("ok"):
                    raise ServeError(
                        f"parity request {request_id} failed: {reply}"
                    )
                got = (
                    reply["counts"],
                    tuple(reply["vector"]),
                    reply["t_cycle_ms"],
                )
                want = (
                    reference.counts_by_name(),
                    tuple(reference.vector),
                    reference.t_cycle_ms,
                )
                if got != want:
                    raise ServeError(
                        f"served decision diverged from the direct array "
                        f"search for {pattern.app} N={pattern.n} "
                        f"(tenant {tenant}): {got} != {want}"
                    )
                instances += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    return instances


async def _served_run(
    resources,
    cost_db,
    patterns: Sequence[LoadPattern],
    expected,
    *,
    clients: int,
    requests_per_client: int,
    connections: int,
    pipeline_depth: int,
    batch_window_ms: float,
    parity: bool,
    metrics,
    clock: Callable[[], float],
) -> Tuple[LoadResult, "PartitionServer", int, Optional[bool]]:
    config = ServerConfig(
        batch_window_ms=batch_window_ms, limits=_bench_limits()
    )
    server = PartitionServer(
        resources, cost_db, config=config, metrics=metrics, clock=clock
    )
    host, port = await server.start("127.0.0.1", 0)
    parity_instances = 0
    parity_ok: Optional[bool] = None
    try:
        if parity:
            # Cold half: the server has never answered these shapes.
            parity_instances += await _parity_over_wire(
                host, port, patterns, expected
            )
        result = await run_load(
            host,
            port,
            clients=clients,
            requests_per_client=requests_per_client,
            patterns=patterns,
            connections=connections,
            pipeline_depth=pipeline_depth,
            clock=clock,
        )
        if parity:
            # Warm half: every engine now holds memos and frontiers.
            parity_instances += await _parity_over_wire(
                host, port, patterns, expected
            )
            parity_ok = True
    finally:
        await server.close()
    return result, server, parity_instances, parity_ok


def run_serve_bench(
    *,
    clients: int = DEFAULT_CLIENTS,
    requests_per_client: int = 1,
    pool: str = DEFAULT_POOL,
    n: int = DEFAULT_N,
    batch_window_ms: float = 2.0,
    connections: int = 64,
    pipeline_depth: int = 32,
    parity: bool = True,
    metrics=None,
    clock: Callable[[], float] = time.perf_counter,
) -> ServeBench:
    """Measure baseline vs served decisions/s on one pool (plus parity)."""
    if clients < 1 or requests_per_client < 1:
        raise ServeError(
            f"need at least one client and one request, got "
            f"{clients} x {requests_per_client}",
            kind="internal",
        )
    net, cost_db = resolve_pool(pool)
    base_resources = gather_available_resources(net)
    pool_counts = [(r.name, r.n_available) for r in base_resources]
    patterns = default_patterns(pool_counts, n=n)
    freq = _mix_frequencies(patterns, clients, requests_per_client)

    # Baseline: price each distinct shape by a cold uncached search (the
    # reference decisions double as the parity expectations).
    expected = []
    baseline_s = []
    for pattern in patterns:
        start = clock()
        decision = _direct_decision(pattern, base_resources, cost_db)
        baseline_s.append(clock() - start)
        expected.append(decision)
    total_requests = clients * requests_per_client
    baseline_mean_s = (
        sum(f * s for f, s in zip(freq, baseline_s)) / total_requests
    )

    result, server, parity_instances, parity_ok = asyncio.run(
        _served_run(
            base_resources,
            cost_db,
            patterns,
            expected,
            clients=clients,
            requests_per_client=requests_per_client,
            connections=connections,
            pipeline_depth=pipeline_depth,
            batch_window_ms=batch_window_ms,
            parity=parity,
            metrics=metrics,
            clock=clock,
        )
    )
    stats = server.coalescer.stats
    return ServeBench(
        pool=pool,
        n=n,
        clients=clients,
        requests_per_client=requests_per_client,
        connections=min(max(1, connections), clients),
        batch_window_ms=batch_window_ms,
        speedup_floor=SERVE_SPEEDUP_FLOOR,
        baseline_mean_s=baseline_mean_s,
        baseline_decisions_per_s=(
            1.0 / baseline_mean_s if baseline_mean_s > 0 else 0.0
        ),
        requests=result.requests,
        ok=result.ok,
        errors=result.errors,
        wall_s=result.wall_s,
        decisions_per_s=result.decisions_per_s,
        p50_ms=result.latency_percentile(50),
        p99_ms=result.latency_percentile(99),
        searches=stats.searches,
        memo_hits=stats.memo_hits,
        fanned_out=stats.fanned_out,
        coalesce_ratio=stats.coalesce_ratio,
        parity_instances=parity_instances,
        parity_ok=parity_ok,
    )


def serve_report(bench: ServeBench) -> str:
    """Human-readable summary for the CLI."""
    from repro.experiments.report import format_table

    rows = [
        ["baseline (1 search/request)", f"{bench.baseline_decisions_per_s:.0f}", "-", "-"],
        [
            "served (batched + cached)",
            f"{bench.decisions_per_s:.0f}",
            f"{bench.p50_ms:.2f}",
            f"{bench.p99_ms:.2f}",
        ],
    ]
    table = format_table(
        ["path", "decisions/s", "p50 ms", "p99 ms"],
        rows,
        title=(
            f"decision service: {bench.clients} clients x "
            f"{bench.requests_per_client} on {bench.pool}, STEN/SOR mix "
            f"N={bench.n}, window {bench.batch_window_ms:g} ms"
        ),
    )
    verdict = (
        "MEETS" if bench.speedup_vs_baseline >= bench.speedup_floor else "BELOW"
    )
    table += (
        f"\n\nserved {bench.ok}/{bench.requests} ok ({bench.errors} errors) "
        f"in {bench.wall_s:.2f} s"
        f"\nspeedup {bench.speedup_vs_baseline:.1f}x — {verdict} the "
        f"committed {bench.speedup_floor:g}x floor"
        f"\ncoalescing: {bench.searches} fresh searches + "
        f"{bench.memo_hits} memo groups served {bench.ok} decisions "
        f"({bench.coalesce_ratio:.0f} per search; {bench.fanned_out} fanned out)"
    )
    if bench.parity_ok is not None:
        table += (
            f"\nserved vs direct-search parity: "
            f"{'OK' if bench.parity_ok else 'BROKEN'} "
            f"({bench.parity_instances} instances, cold + warm)"
        )
    return table


def serve_payload(bench: ServeBench) -> dict:
    """JSON-serializable record (the ``BENCH_serve_perf.json`` schema)."""
    return {
        "serve": {
            "pool": bench.pool,
            "n": bench.n,
            "clients": bench.clients,
            "requests_per_client": bench.requests_per_client,
            "connections": bench.connections,
            "batch_window_ms": bench.batch_window_ms,
            # Committed with the payload like the other within-run floors:
            # the gate enforces it against the current run alone.
            "speedup_floor": bench.speedup_floor,
            "baseline_mean_s": bench.baseline_mean_s,
            "baseline_decisions_per_s": bench.baseline_decisions_per_s,
            "requests": bench.requests,
            "ok": bench.ok,
            "errors": bench.errors,
            "wall_s": bench.wall_s,
            "decisions_per_s": bench.decisions_per_s,
            "speedup_vs_baseline": bench.speedup_vs_baseline,
            "p50_ms": bench.p50_ms,
            "p99_ms": bench.p99_ms,
            "searches": bench.searches,
            "memo_hits": bench.memo_hits,
            "fanned_out": bench.fanned_out,
            "coalesce_ratio": bench.coalesce_ratio,
            "parity_ok": bench.parity_ok,
            "parity_instances": bench.parity_instances,
        }
    }
