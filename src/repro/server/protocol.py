"""The decision server's wire protocol: newline-delimited JSON.

One request per line, one reply per line, order-independent (replies
carry the request ``id``, so clients may pipeline).  The schema is
deliberately tiny and versioned:

Request::

    {"id": "r1", "tenant": "team-a",
     "workload": {"app": "stencil", "n": 600, "overlap": false, "cycles": 10},
     "availability": {"c0": 8, "c1": 4},        # optional; omitted = full pool
     "startup_ms": 0.0}                          # optional

Decision reply::

    {"v": 1, "ok": true, "id": "r1", "tenant": "team-a",
     "counts": {"c0": 5, "c1": 0}, "vector": [120, 120, ...],
     "t_cycle_ms": 26.61, "t_comp_ms": ..., "t_comm_ms": ...,
     "evaluations": 351, "method": "exhaustive",
     "served_from": "search" | "memo" | "batch", "batch_size": 3}

Error reply (typed backpressure)::

    {"v": 1, "ok": false, "id": "r1",
     "error": {"kind": "overloaded", "message": "...", "retry_after_ms": 4.0}}

``kind`` is one of ``bad-request`` (malformed line / unknown workload or
cluster), ``rate-limited`` / ``overloaded`` (admission control; carries
``retry_after_ms``), ``draining`` (server is shutting down), or
``internal``.  Clients must treat unknown reply fields as
forward-compatible extensions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.errors import ServeError
from repro.partition.available import ClusterResources
from repro.partition.heuristic import PartitionDecision

__all__ = [
    "PROTOCOL_VERSION",
    "WORKLOADS",
    "WorkloadSpec",
    "ServeRequest",
    "decode_request",
    "decision_reply",
    "error_reply",
    "encode_line",
    "restrict_pool",
]

PROTOCOL_VERSION = 1

#: Error kinds a reply's ``error.kind`` may carry.
ERROR_KINDS = (
    "bad-request",
    "rate-limited",
    "overloaded",
    "draining",
    "internal",
)


@dataclass(frozen=True)
class WorkloadSpec:
    """What the tenant wants partitioned: an application family + size.

    The registered builders cover the paper's data-parallel kernels; the
    registry is open — adding an app is one entry in :data:`WORKLOADS`.
    """

    app: str
    n: int
    overlap: bool = False
    cycles: int = 10

    def key(self) -> tuple:
        """The batching/engine-pool identity of this workload."""
        return (self.app, self.n, self.overlap, self.cycles)

    def build(self):
        """The annotated computation this spec describes."""
        try:
            builder = WORKLOADS[self.app]
        except KeyError:
            known = ", ".join(sorted(WORKLOADS))
            raise ServeError(
                f"unknown workload app {self.app!r} (known: {known})"
            ) from None
        return builder(self)

    def describe(self) -> str:
        tail = " overlap" if self.overlap else ""
        return f"{self.app} N={self.n}{tail}"


def _build_stencil(spec: WorkloadSpec):
    from repro.apps.stencil import stencil_computation

    return stencil_computation(spec.n, overlap=spec.overlap, cycles=spec.cycles)


def _build_sor(spec: WorkloadSpec):
    from repro.apps.sor import sor_computation

    return sor_computation(spec.n, cycles=spec.cycles)


def _build_gauss(spec: WorkloadSpec):
    from repro.apps.gauss import gauss_computation

    return gauss_computation(spec.n)


#: Workload registry: app name -> computation builder.
WORKLOADS: Dict[str, Callable[[WorkloadSpec], object]] = {
    "stencil": _build_stencil,
    "sor": _build_sor,
    "gauss": _build_gauss,
}


@dataclass(frozen=True)
class ServeRequest:
    """One decoded request line."""

    id: str
    tenant: str
    workload: WorkloadSpec
    #: Per-cluster schedulable node counts; ``None`` = the whole pool.
    availability: Optional[Dict[str, int]]
    startup_ms: float = 0.0


def _require(obj: dict, field: str, types, *, where: str):
    if field not in obj:
        raise ServeError(f"{where}: missing required field {field!r}")
    value = obj[field]
    # bool is an int subclass; a JSON true/false is never a valid count.
    if not isinstance(value, types) or (
        isinstance(value, bool) and types is not bool
    ):
        raise ServeError(
            f"{where}: field {field!r} has wrong type {type(value).__name__}"
        )
    return value


def decode_request(line: str) -> ServeRequest:
    """Parse and validate one request line.

    Raises :class:`~repro.errors.ServeError` (kind ``bad-request``) on any
    malformation; the server maps that onto a typed error reply instead of
    dropping the connection.
    """
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServeError(f"request is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ServeError("request must be a JSON object")
    req_id = _require(obj, "id", str, where="request")
    tenant = _require(obj, "tenant", str, where="request")
    if not req_id or not tenant:
        raise ServeError("request: 'id' and 'tenant' must be non-empty")
    workload = _require(obj, "workload", dict, where="request")
    app = _require(workload, "app", str, where="workload")
    n = _require(workload, "n", int, where="workload")
    if n < 1:
        raise ServeError(f"workload: n must be >= 1, got {n}")
    overlap = workload.get("overlap", False)
    if not isinstance(overlap, bool):
        raise ServeError("workload: 'overlap' must be a boolean")
    cycles = workload.get("cycles", 10)
    if not isinstance(cycles, int) or isinstance(cycles, bool) or cycles < 1:
        raise ServeError("workload: 'cycles' must be a positive integer")
    if app not in WORKLOADS:
        known = ", ".join(sorted(WORKLOADS))
        raise ServeError(f"unknown workload app {app!r} (known: {known})")
    availability = obj.get("availability")
    if availability is not None:
        if not isinstance(availability, dict):
            raise ServeError("request: 'availability' must be an object")
        for name, count in availability.items():
            if not isinstance(count, int) or isinstance(count, bool) or count < 0:
                raise ServeError(
                    f"availability[{name!r}] must be a non-negative integer"
                )
    startup_ms = obj.get("startup_ms", 0.0)
    if isinstance(startup_ms, bool) or not isinstance(startup_ms, (int, float)):
        raise ServeError("request: 'startup_ms' must be a number")
    if startup_ms < 0:
        raise ServeError(f"request: startup_ms must be >= 0, got {startup_ms}")
    return ServeRequest(
        id=req_id,
        tenant=tenant,
        workload=WorkloadSpec(app=app, n=n, overlap=overlap, cycles=cycles),
        availability=dict(availability) if availability is not None else None,
        startup_ms=float(startup_ms),
    )


def restrict_pool(
    base: Sequence[ClusterResources],
    availability: Optional[Dict[str, int]],
) -> list[ClusterResources]:
    """The request's view of the pool: per-cluster node counts clamped to
    what actually exists.

    A cluster absent from ``availability`` contributes nothing; a count
    larger than the cluster's schedulable size is a
    :class:`~repro.errors.ServeError` (the tenant is asking for nodes the
    pool does not have — silently clamping would make the reply depend on
    server state the tenant cannot see).  ``availability=None`` means the
    whole pool.
    """
    if availability is None:
        return list(base)
    by_name = {res.name: res for res in base}
    unknown = sorted(set(availability) - set(by_name))
    if unknown:
        known = ", ".join(sorted(by_name))
        raise ServeError(
            f"unknown cluster(s) {unknown} in availability (pool has: {known})"
        )
    restricted = []
    for name, count in availability.items():
        res = by_name[name]
        if count > res.n_available:
            raise ServeError(
                f"availability[{name!r}]={count} exceeds the pool's "
                f"{res.n_available} schedulable nodes"
            )
        if count == 0:
            continue
        restricted.append(
            ClusterResources(
                cluster=res.cluster,
                available=tuple(res.take(count)),
                load_adjusted=res.load_adjusted,
            )
        )
    return restricted


def decision_reply(
    request: ServeRequest,
    decision: PartitionDecision,
    *,
    served_from: str,
    batch_size: int,
) -> dict:
    """A decision rendered as a reply object."""
    return {
        "v": PROTOCOL_VERSION,
        "ok": True,
        "id": request.id,
        "tenant": request.tenant,
        "counts": decision.counts_by_name(),
        "vector": list(decision.vector),
        "t_cycle_ms": decision.t_cycle_ms,
        "t_comp_ms": decision.estimate.t_comp_ms,
        "t_comm_ms": decision.estimate.t_comm_ms,
        "evaluations": decision.evaluations,
        "method": decision.method,
        "served_from": served_from,
        "batch_size": batch_size,
    }


def error_reply(
    request_id: Optional[str],
    kind: str,
    message: str,
    *,
    retry_after_ms: Optional[float] = None,
) -> dict:
    """A typed failure reply (admission shed, bad request, drain, ...)."""
    if kind not in ERROR_KINDS:
        raise ServeError(f"unknown error kind {kind!r}", kind="internal")
    error: dict = {"kind": kind, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = retry_after_ms
    return {"v": PROTOCOL_VERSION, "ok": False, "id": request_id, "error": error}


def encode_line(obj: dict) -> bytes:
    """One wire line: compact JSON + newline."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")
