"""Request batching: coalesce one tick's compatible requests.

The server collects requests for one batch window, then hands the whole
tick to :class:`Coalescer.run`.  Coalescing happens at two levels:

* **identical requests** — same workload, same ``startup_ms``, same
  restricted pool — are served by *one* engine evaluation fanned out to
  every requester, whatever their tenant (the decision is a pure function
  of those inputs; only the decision *memo* stays per-tenant, via
  :meth:`DecisionEngine.remember_exact
  <repro.partition.engine.DecisionEngine.remember_exact>`);
* **compatible requests** — same workload, different pools — run through
  the *same* cached :class:`~repro.partition.arrayengine.ArraySearchEngine`
  (one lowering, shared estimate memo, incremental frontier), so a batch
  of N distinct shrinking availabilities costs far less than N cold
  searches.

The coalescing ratio the bench reports is
``requests / fresh searches`` — how many answers each streamed search
paid for.

:class:`EnginePool` owns one :class:`~repro.partition.engine.DecisionEngine`
(and its bounded :class:`~repro.partition.warmstart.SearchCache`) per
``(workload, startup_ms)``, itself LRU-bounded so a tenant enumerating
problem sizes cannot hold unbounded lowered engines alive.

This module is deliberately asyncio-free: the server calls :meth:`run`
from its flush task, and the unit tests call it directly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ReproError, ServeError
from repro.partition.available import ClusterResources
from repro.partition.engine import DecisionEngine
from repro.partition.warmstart import SearchCache
from repro.server.protocol import (
    ServeRequest,
    WorkloadSpec,
    decision_reply,
    error_reply,
)
from repro.telemetry import NULL_REGISTRY

__all__ = ["BatchItem", "BatchStats", "Coalescer", "EnginePool"]


class EnginePool:
    """LRU-bounded ``(workload, startup_ms) -> DecisionEngine`` map.

    Every engine gets its own :class:`SearchCache` (caches are scoped to
    one computation + cost database) that is *shared across tenants*:
    estimate memos and array-engine frontiers are pure functions of the
    pool, so tenants reuse each other's search work, while decisions stay
    under per-tenant signatures.
    """

    def __init__(
        self,
        cost_db,
        *,
        topology_fingerprint: Optional[str] = None,
        cache_entries: Optional[int] = 4096,
        max_engines: int = 32,
        metrics=None,
    ) -> None:
        if max_engines < 1:
            raise ValueError(f"max_engines must be >= 1, got {max_engines}")
        self.cost_db = cost_db
        self.topology_fingerprint = topology_fingerprint
        self.cache_entries = cache_entries
        self.max_engines = max_engines
        self.metrics = metrics
        self._engines: OrderedDict[tuple, DecisionEngine] = OrderedDict()
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_built = registry.counter(
            "serve.engines.built",
            domain="host",
            help="workload engines lowered (pool misses)",
        )
        self._m_evicted = registry.counter(
            "serve.engines.evicted",
            domain="host",
            help="workload engines dropped by the pool's LRU bound",
        )
        self._m_live = registry.gauge(
            "serve.engines.live", domain="host", help="live workload engines"
        )

    def engine_for(
        self, workload: WorkloadSpec, *, startup_ms: float = 0.0
    ) -> DecisionEngine:
        key = workload.key() + (startup_ms,)
        engine = self._engines.get(key)
        if engine is not None:
            self._engines.move_to_end(key)
            return engine
        computation = workload.build()
        cache = SearchCache(
            topology_fingerprint=self.topology_fingerprint,
            max_entries=self.cache_entries,
            metrics=self.metrics,
        )
        engine = DecisionEngine(
            computation,
            self.cost_db,
            startup_ms=startup_ms,
            engine="array",
            cache=cache,
            metrics=self.metrics,
        )
        self._engines[key] = engine
        self._m_built.inc()
        while len(self._engines) > self.max_engines:
            self._engines.popitem(last=False)
            self._m_evicted.inc()
        self._m_live.set(len(self._engines))
        return engine

    def __len__(self) -> int:
        return len(self._engines)


@dataclass(frozen=True)
class BatchItem:
    """One admitted request plus its (already validated) restricted pool."""

    request: ServeRequest
    resources: Tuple[ClusterResources, ...]

    def pool_key(self) -> tuple:
        """Tenant-agnostic identity of the restricted pool (order-free)."""
        return tuple(
            sorted(
                (
                    res.name,
                    res.load_adjusted,
                    tuple(proc.proc_id for proc in res.available),
                )
                for res in self.resources
            )
        )


@dataclass
class BatchStats:
    """Plain-int mirror of the ``serve.coalesce.*`` counters."""

    requests: int = 0
    searches: int = 0  #: fresh streamed searches that ran
    memo_hits: int = 0  #: groups answered whole from a tenant decision memo
    fanned_out: int = 0  #: requests beyond the first in their group
    errors: int = 0
    batches: int = 0
    batch_sizes: List[int] = field(default_factory=list)

    @property
    def coalesce_ratio(self) -> float:
        """Requests served per fresh search (>= 1; inf when all memo)."""
        served = self.requests - self.errors
        if served <= 0:
            return 1.0
        if self.searches == 0:
            return float(served)
        return served / self.searches


class Coalescer:
    """Serves one batch of admitted requests through the engine pool."""

    def __init__(self, pool: EnginePool, *, metrics=None) -> None:
        self.pool = pool
        self.stats = BatchStats()
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_requests = registry.counter(
            "serve.coalesce.requests",
            domain="host",
            help="requests entering the coalescer",
        )
        self._m_searches = registry.counter(
            "serve.coalesce.searches",
            domain="host",
            help="fresh streamed searches the coalescer ran",
        )
        self._m_memo = registry.counter(
            "serve.coalesce.memo_hits",
            domain="host",
            help="request groups answered from a decision memo",
        )
        self._m_fanout = registry.counter(
            "serve.coalesce.fanout",
            domain="host",
            help="requests served by another request's evaluation",
        )
        self._m_batches = registry.counter(
            "serve.batches", domain="host", help="batch ticks executed"
        )
        self._m_batch_size = registry.histogram(
            "serve.batch_size",
            domain="host",
            help="requests per batch tick",
        )

    def run(self, items: Sequence[BatchItem]) -> list[tuple[BatchItem, dict]]:
        """Serve every item; returns ``(item, reply object)`` pairs.

        Never raises for a single bad request — engine failures become
        typed error replies so one tenant's impossible pool cannot poison
        the rest of the tick.
        """
        self.stats.batches += 1
        self.stats.batch_sizes.append(len(items))
        self._m_batches.inc()
        self._m_batch_size.observe(len(items))
        groups: "OrderedDict[tuple, list[BatchItem]]" = OrderedDict()
        for item in items:
            key = (
                item.request.workload.key(),
                item.request.startup_ms,
                item.pool_key(),
            )
            groups.setdefault(key, []).append(item)
        outcomes: list[tuple[BatchItem, dict]] = []
        for members in groups.values():
            outcomes.extend(self._serve_group(members))
        self.stats.requests += len(items)
        self._m_requests.inc(len(items))
        return outcomes

    def _serve_group(
        self, members: list[BatchItem]
    ) -> list[tuple[BatchItem, dict]]:
        first = members[0]
        request = first.request
        try:
            engine = self.pool.engine_for(
                request.workload, startup_ms=request.startup_ms
            )
            ordered = engine.order(first.resources)
            if not ordered:
                raise ServeError("availability selects no processors at all")
            # Any member tenant's memo hit answers the whole group.
            decision = None
            source = "memo"
            for item in members:
                decision = engine.cached_exact(
                    ordered, tenant=item.request.tenant
                )
                if decision is not None:
                    break
            if decision is None:
                decision = engine.decide_exact(
                    first.resources, tenant=request.tenant
                )
                source = "search"
                self.stats.searches += 1
                self._m_searches.inc()
            else:
                self.stats.memo_hits += 1
                self._m_memo.inc()
        except ServeError as exc:
            self.stats.errors += len(members)
            return [
                (item, error_reply(item.request.id, exc.kind, str(exc)))
                for item in members
            ]
        except ReproError as exc:
            # Input-driven: the restricted pool admits no valid
            # configuration, or the pool's cost database has no fit for
            # the workload's topology (FittingError).  The tenant's
            # request is unservable *here*, not a server fault.
            self.stats.errors += len(members)
            return [
                (item, error_reply(item.request.id, "bad-request", str(exc)))
                for item in members
            ]
        outcomes = []
        for i, item in enumerate(members):
            engine.remember_exact(
                ordered, decision, tenant=item.request.tenant
            )
            served_from = source if i == 0 else "batch"
            if i > 0:
                self.stats.fanned_out += 1
                self._m_fanout.inc()
            outcomes.append(
                (
                    item,
                    decision_reply(
                        item.request,
                        decision,
                        served_from=served_from,
                        batch_size=len(members),
                    ),
                )
            )
        return outcomes
