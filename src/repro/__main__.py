"""``python -m repro`` — regenerate the paper's artifacts (see repro.cli)."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
