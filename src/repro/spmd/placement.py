"""Task-placement strategies (paper §6 and tech report [11]).

Placement maps task ranks onto the chosen processors.  For a 1-D topology the
paper uses the simple contiguous strategy — tasks fill the fast cluster, then
the next, so exactly one neighbour pair communicates across the router.  An
interleaved strategy is provided as the pathological baseline for ablation:
it maximizes cross-router neighbour pairs.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import TopologyError
from repro.hardware.processor import Processor

__all__ = [
    "PlacementStrategy",
    "contiguous_placement",
    "interleaved_placement",
    "random_placement",
    "cross_cluster_pairs",
]

#: A placement takes the configuration's processors (already ordered by the
#: partitioner: fast cluster first) and returns the rank→processor mapping.
PlacementStrategy = Callable[[Sequence[Processor]], list[Processor]]


def contiguous_placement(processors: Sequence[Processor]) -> list[Processor]:
    """Ranks follow the given cluster-contiguous processor order (the default).

    With processors listed cluster by cluster, neighbouring ranks land in the
    same cluster except at cluster boundaries — the placement the paper uses
    so "only one task in each cluster needs to communicate across the router".
    """
    return list(processors)


def interleaved_placement(processors: Sequence[Processor]) -> list[Processor]:
    """Round-robin ranks across clusters — the adversarial placement.

    Used in ablations to show placement matters: for a 1-D topology nearly
    every neighbour pair crosses the router.
    """
    by_cluster: dict[str, list[Processor]] = {}
    for proc in processors:
        by_cluster.setdefault(proc.cluster_name, []).append(proc)
    queues = list(by_cluster.values())
    result: list[Processor] = []
    i = 0
    while len(result) < len(processors):
        queue = queues[i % len(queues)]
        if queue:
            result.append(queue.pop(0))
        i += 1
    return result


def random_placement(rng: np.random.Generator) -> PlacementStrategy:
    """A placement strategy that shuffles ranks with ``rng``."""

    def place(processors: Sequence[Processor]) -> list[Processor]:
        order = rng.permutation(len(processors))
        return [processors[i] for i in order]

    return place


def cross_cluster_pairs(
    placement: Sequence[Processor], neighbor_fn: Callable[[int], list[int]]
) -> int:
    """Count neighbour pairs whose endpoints live in different clusters.

    ``neighbor_fn(rank)`` must return the topology neighbours of ``rank``.
    Each unordered pair is counted once.
    """
    if not placement:
        raise TopologyError("placement is empty")
    seen: set[tuple[int, int]] = set()
    for rank, proc in enumerate(placement):
        for other in neighbor_fn(rank):
            pair = (min(rank, other), max(rank, other))
            if pair in seen:
                continue
            seen.add(pair)
    crossings = 0
    for a, b in seen:
        if placement[a].cluster_name != placement[b].cluster_name:
            crossings += 1
    return crossings
