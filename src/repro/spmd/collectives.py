"""Collective operations built on the task primitives.

The paper's applications need broadcast (Gaussian elimination's pivot-row
distribution) and reductions (convergence tests).  These are implemented on
top of :class:`~repro.spmd.task.TaskContext` point-to-point operations so
their cost emerges from the same simulated substrate the cost functions are
fitted to.

Every collective must be called by *all* ranks of the run, like MPI.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.process import ProcessGenerator
from repro.spmd.task import TaskContext

__all__ = ["broadcast", "tree_broadcast", "reduce", "allreduce", "barrier", "gather", "scatter", "allgather"]


def broadcast(
    ctx: TaskContext, nbytes: int, value: Any = None, root: int = 0, tag: str = "bcast"
) -> ProcessGenerator:
    """Root sends ``value`` (costed at ``nbytes``) to every other rank.

    Flat (linear) broadcast — the root transmits to each rank in turn,
    matching the paper's view of broadcast as inherently bandwidth-limited:
    offered load is linear in the total number of processors.
    Returns the broadcast value on every rank.
    """
    if ctx.size == 1:
        return value
    if ctx.rank == root:
        events = []
        for other in range(ctx.size):
            if other == root:
                continue
            done = yield from ctx.isend(other, nbytes, tag=tag, payload=value)
            events.append(done)
        if events:
            yield ctx.sim.all_of(events)
        return value
    msg = yield from ctx.recv(from_rank=root, tag=tag)
    return msg.payload


def tree_broadcast(
    ctx: TaskContext, nbytes: int, value: Any = None, root: int = 0, tag: str = "tbcast"
) -> ProcessGenerator:
    """Binomial-tree broadcast: log-depth alternative to the flat one.

    Not something 1994-MMPS provided — included as the natural "what if"
    extension: the offered load is still linear in total processors (every
    rank receives the payload once), but the *critical path* drops from
    ``p-1`` sequential sends at the root to ``log2 p`` rounds.  The
    flat-vs-tree ablation quantifies how much of broadcast's badness is
    root serialization vs raw bandwidth.
    """
    if ctx.size == 1:
        return value
    me = (ctx.rank - root) % ctx.size
    if me != 0:
        # Parent in the binomial tree: my index with the lowest set bit
        # cleared (so node 0b110's parent is 0b100, 0b101's is 0b100, ...).
        parent_index = me & (me - 1)
        parent = (parent_index + root) % ctx.size
        msg = yield from ctx.recv(from_rank=parent, tag=tag)
        value = msg.payload
    # Children: set, one at a time, every bit *below* my lowest set bit
    # (below ctx.size for the root) — the inverse of the parent rule.
    events = []
    limit = (me & -me) if me != 0 else ctx.size
    bit = 1
    while bit < limit:
        child_index = me | bit
        if child_index < ctx.size:
            child = (child_index + root) % ctx.size
            done = yield from ctx.isend(child, nbytes, tag=tag, payload=value)
            events.append(done)
        bit <<= 1
    if events:
        yield ctx.sim.all_of(events)
    return value


def reduce(
    ctx: TaskContext,
    nbytes: int,
    value: Any,
    op: Callable[[Any, Any], Any],
    root: int = 0,
    tag: str = "reduce",
) -> ProcessGenerator:
    """Combine every rank's ``value`` with ``op`` at ``root``.

    Binary-tree combine: rank r receives from children ``2r+1``/``2r+2``
    (tree-index relative to root at 0) and sends its partial result to its
    parent.  Non-root ranks return ``None``.
    """
    if ctx.size == 1:
        return value
    # Relabel so the root is tree-index 0.
    def to_tree(rank: int) -> int:
        return (rank - root) % ctx.size

    def from_tree(index: int) -> int:
        return (index + root) % ctx.size

    me = to_tree(ctx.rank)
    acc = value
    for child_index in (2 * me + 1, 2 * me + 2):
        if child_index < ctx.size:
            msg = yield from ctx.recv(from_rank=from_tree(child_index), tag=tag)
            acc = op(acc, msg.payload)
    if me != 0:
        parent = from_tree((me - 1) // 2)
        yield from ctx.send(parent, nbytes, tag=tag, payload=acc)
        return None
    return acc


def allreduce(
    ctx: TaskContext,
    nbytes: int,
    value: Any,
    op: Callable[[Any, Any], Any],
    tag: str = "allreduce",
) -> ProcessGenerator:
    """Reduce to rank 0 then broadcast the result back to all ranks."""
    total = yield from reduce(ctx, nbytes, value, op, root=0, tag=tag + ":r")
    result = yield from broadcast(ctx, nbytes, total, root=0, tag=tag + ":b")
    return result


def barrier(ctx: TaskContext, tag: str = "barrier") -> ProcessGenerator:
    """Synchronize all ranks (a zero-byte allreduce)."""
    yield from allreduce(ctx, 0, None, lambda a, b: None, tag=tag)
    return None


def gather(
    ctx: TaskContext, nbytes: int, value: Any, root: int = 0, tag: str = "gather"
) -> ProcessGenerator:
    """Collect every rank's ``value`` at ``root``, in rank order.

    Each non-root rank sends one ``nbytes`` message; the root receives
    ``size-1`` of them — the same root-serialized shape as the flat
    broadcast, and equally bandwidth-limited.  Non-root ranks return
    ``None``.
    """
    if ctx.size == 1:
        return [value]
    if ctx.rank != root:
        yield from ctx.send(root, nbytes, tag=tag, payload=value)
        return None
    values: list[Any] = [None] * ctx.size
    values[root] = value
    for other in range(ctx.size):
        if other == root:
            continue
        msg = yield from ctx.recv(from_rank=other, tag=tag)
        values[other] = msg.payload
    return values


def scatter(
    ctx: TaskContext,
    nbytes: int,
    values: Any = None,
    root: int = 0,
    tag: str = "scatter",
) -> ProcessGenerator:
    """Root distributes ``values[rank]`` to each rank (cost ``nbytes`` each).

    The initial-data-distribution primitive behind ``T_startup``.  Returns
    this rank's element on every rank.
    """
    if ctx.size == 1:
        return values[0] if values is not None else None
    if ctx.rank == root:
        if values is None or len(values) != ctx.size:
            raise ValueError(
                f"root needs one value per rank ({ctx.size}), got "
                f"{None if values is None else len(values)}"
            )
        events = []
        for other in range(ctx.size):
            if other == root:
                continue
            done = yield from ctx.isend(other, nbytes, tag=tag, payload=values[other])
            events.append(done)
        if events:
            yield ctx.sim.all_of(events)
        return values[root]
    msg = yield from ctx.recv(from_rank=root, tag=tag)
    return msg.payload


def allgather(
    ctx: TaskContext, nbytes: int, value: Any, tag: str = "allgather"
) -> ProcessGenerator:
    """Ring all-gather: after ``size-1`` rounds every rank holds all values.

    Each round, every rank forwards the block it most recently received to
    its right neighbour — the bandwidth-optimal pattern for all-to-all data
    assembly on a ring (each block crosses each link exactly once).
    ``nbytes`` is the per-block message size.  Returns a list indexed by
    rank.
    """
    values: list[Any] = [None] * ctx.size
    values[ctx.rank] = value
    if ctx.size == 1:
        return values
    right = (ctx.rank + 1) % ctx.size
    left = (ctx.rank - 1) % ctx.size
    carry_rank, carry_value = ctx.rank, value
    for step in range(ctx.size - 1):
        yield from ctx.isend(
            right, nbytes, tag=f"{tag}:{step}", payload=(carry_rank, carry_value)
        )
        msg = yield from ctx.recv(from_rank=left, tag=f"{tag}:{step}")
        carry_rank, carry_value = msg.payload
        values[carry_rank] = carry_value
    return values
