"""Synchronous communication topologies (paper §3/§4).

The partitioning method restricts applications to a common set of regular,
*synchronous* patterns — 1-D, 2-D, tree, ring, and broadcast — for which
topology-specific cost functions can be benchmarked offline.  This module
defines the topology vocabulary and the neighbour structure each implies.

"Synchronous" means all tasks participate in the communication at the same
logical time: during one cycle each task sends one message to every
neighbour, then receives one from each.
"""

from __future__ import annotations

import enum
import math

from repro.errors import TopologyError

__all__ = ["Topology", "neighbors", "max_neighbor_degree", "grid_shape"]


class Topology(str, enum.Enum):
    """The paper's restricted set of communication topologies."""

    ONE_D = "1-D"
    RING = "ring"
    TWO_D = "2-D"
    TREE = "tree"
    BROADCAST = "broadcast"

    @property
    def bandwidth_limited(self) -> bool:
        """Whether the pattern consumes bandwidth linear in *total* processors.

        The paper singles out broadcast: its offered load grows with the
        total processor count no matter how processors are spread over
        segments, so extra segments buy no locality benefit (§3, Eq 2
        discussion).
        """
        return self is Topology.BROADCAST

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _check_rank(rank: int, size: int) -> None:
    if size < 1:
        raise TopologyError(f"topology size must be >= 1, got {size}")
    if not 0 <= rank < size:
        raise TopologyError(f"rank {rank} out of range for size {size}")


def grid_shape(size: int) -> tuple[int, int]:
    """Near-square (rows, cols) factorization used by the 2-D topology."""
    if size < 1:
        raise TopologyError(f"grid needs at least one task, got {size}")
    rows = int(math.isqrt(size))
    while size % rows != 0:
        rows -= 1
    return rows, size // rows


def neighbors(topology: Topology, rank: int, size: int) -> list[int]:
    """Ranks that ``rank`` exchanges messages with during one cycle.

    The relation is symmetric for 1-D, ring, 2-D, and tree.  For broadcast
    the root (rank 0) sends to everyone and everyone else communicates with
    the root only.
    """
    _check_rank(rank, size)
    if size == 1:
        return []
    if topology is Topology.ONE_D:
        result = []
        if rank > 0:
            result.append(rank - 1)
        if rank < size - 1:
            result.append(rank + 1)
        return result
    if topology is Topology.RING:
        if size == 2:
            return [1 - rank]
        return sorted({(rank - 1) % size, (rank + 1) % size})
    if topology is Topology.TWO_D:
        rows, cols = grid_shape(size)
        r, c = divmod(rank, cols)
        result = []
        if r > 0:
            result.append(rank - cols)
        if c > 0:
            result.append(rank - 1)
        if c < cols - 1:
            result.append(rank + 1)
        if r < rows - 1:
            result.append(rank + cols)
        return result
    if topology is Topology.TREE:
        result = []
        if rank > 0:
            result.append((rank - 1) // 2)
        for child in (2 * rank + 1, 2 * rank + 2):
            if child < size:
                result.append(child)
        return result
    if topology is Topology.BROADCAST:
        if rank == 0:
            return list(range(1, size))
        return [0]
    raise TopologyError(f"unknown topology: {topology!r}")  # pragma: no cover


def max_neighbor_degree(topology: Topology, size: int) -> int:
    """The largest neighbour count any rank has — bounds per-cycle messages."""
    if size <= 1:
        return 0
    if topology is Topology.ONE_D:
        return 1 if size == 2 else 2
    if topology is Topology.RING:
        return 1 if size == 2 else 2
    if topology is Topology.BROADCAST:
        return size - 1
    if topology in (Topology.TWO_D, Topology.TREE):
        return max(len(neighbors(topology, rank, size)) for rank in range(size))
    raise TopologyError(f"unknown topology: {topology!r}")  # pragma: no cover
