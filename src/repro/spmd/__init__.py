"""SPMD runtime over the simulated network.

The paper's §4 computation model: identical tasks, one per processor, each
computing on its region of the data domain and exchanging messages in a
regular synchronous topology.  :class:`SPMDRun` drives a set of task bodies;
:class:`TaskContext` provides the in-task API; :mod:`repro.spmd.collectives`
adds broadcast/reduce on top.
"""

from repro.spmd.collectives import (
    allgather,
    allreduce,
    barrier,
    broadcast,
    gather,
    reduce,
    scatter,
    tree_broadcast,
)
from repro.spmd.placement import (
    PlacementStrategy,
    contiguous_placement,
    cross_cluster_pairs,
    interleaved_placement,
    random_placement,
)
from repro.spmd.runtime import RunResult, SPMDRun, TaskBody
from repro.spmd.task import TaskContext
from repro.spmd.topology import Topology, grid_shape, max_neighbor_degree, neighbors

__all__ = [
    "allgather",
    "allreduce",
    "barrier",
    "broadcast",
    "tree_broadcast",
    "gather",
    "scatter",
    "reduce",
    "PlacementStrategy",
    "contiguous_placement",
    "cross_cluster_pairs",
    "interleaved_placement",
    "random_placement",
    "RunResult",
    "SPMDRun",
    "TaskBody",
    "TaskContext",
    "Topology",
    "grid_shape",
    "max_neighbor_degree",
    "neighbors",
]
