"""Task-side SPMD programming interface.

A task body is a generator function ``body(ctx)`` receiving a
:class:`TaskContext`.  The context exposes the paper's model operations:

* ``compute(ops)`` — a computation phase of so many abstract operations;
* ``send`` / ``isend`` / ``recv`` — MMPS messaging addressed *by rank*;
* ``exchange(nbytes)`` — one full synchronous communication cycle: an
  asynchronous send to each topology neighbour followed by a blocking
  receive from each (exactly the paper's benchmarked cycle);
* ``mark_cycle()`` — record a per-cycle timestamp for analysis.

All operations are generators: use ``yield from ctx.op(...)`` inside bodies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.errors import TopologyError
from repro.hardware.processor import OpKind, Processor
from repro.mmps.system import Endpoint
from repro.sim import Event
from repro.sim.process import ProcessGenerator
from repro.spmd.topology import Topology, neighbors

if TYPE_CHECKING:  # pragma: no cover
    from repro.spmd.runtime import SPMDRun

__all__ = ["TaskContext"]


class TaskContext:
    """Everything rank ``rank`` needs to run its piece of the computation."""

    def __init__(
        self,
        run: "SPMDRun",
        rank: int,
        placement: Sequence[Processor],
        endpoint: Endpoint,
        topology: Topology,
    ) -> None:
        self.run = run
        self.rank = rank
        self.size = len(placement)
        self._placement = list(placement)
        self.endpoint = endpoint
        self.topology = topology
        self.sim = endpoint.sim
        #: Timestamps recorded by mark_cycle(), for per-cycle analysis.
        self.cycle_marks: list[float] = []
        #: Total simulated time this task spent in compute().
        self.compute_time_ms = 0.0
        #: Total simulated time this task was *blocked* in communication
        #: operations (send/isend initiation, recv wait + processing).
        self.comm_time_ms = 0.0
        #: Activity intervals (kind, start_ms, end_ms) with kind in
        #: {"compute", "send", "recv"} — raw material for timelines.
        self.activity: list[tuple[str, float, float]] = []

    # -- identity -------------------------------------------------------------

    @property
    def processor(self) -> Processor:
        """The node this task runs on."""
        return self._placement[self.rank]

    def processor_of(self, rank: int) -> Processor:
        """The node a peer rank runs on."""
        if not 0 <= rank < self.size:
            raise TopologyError(f"rank {rank} out of range for size {self.size}")
        return self._placement[rank]

    def neighbors(self) -> list[int]:
        """This rank's topology neighbours for the current cycle."""
        return neighbors(self.topology, self.rank, self.size)

    # -- phases ---------------------------------------------------------------

    def compute(self, ops: float, kind: OpKind = "fp") -> ProcessGenerator:
        """A computation phase of ``ops`` operations on this node.

        Honours the node's current sharing load: a node at load 0.5 computes
        at half speed, so running on "available but busy" processors costs
        what it would in reality (the §3 general case).
        """
        duration = self.processor.compute_time_ms(ops, kind, load_adjusted=True)
        self.compute_time_ms += duration
        start = self.sim.now
        yield self.sim.timeout(duration)
        if duration > 0:
            self.activity.append(("compute", start, self.sim.now))

    def send(
        self, to_rank: int, nbytes: int, tag: str = "", payload: Any = None
    ) -> ProcessGenerator:
        """Blocking send to a peer rank."""
        start = self.sim.now
        yield from self.endpoint.send(self.processor_of(to_rank), nbytes, tag, payload)
        self.comm_time_ms += self.sim.now - start
        self.activity.append(("send", start, self.sim.now))

    def isend(
        self, to_rank: int, nbytes: int, tag: str = "", payload: Any = None
    ) -> ProcessGenerator:
        """Asynchronous send; returns a completion event (see MMPS.isend)."""
        start = self.sim.now
        done = yield from self.endpoint.isend(
            self.processor_of(to_rank), nbytes, tag, payload
        )
        self.comm_time_ms += self.sim.now - start
        self.activity.append(("send", start, self.sim.now))
        return done

    def recv(self, from_rank: Optional[int] = None, tag: Optional[str] = None) -> ProcessGenerator:
        """Blocking receive, optionally selective on peer rank and tag."""
        src = self.processor_of(from_rank) if from_rank is not None else None
        start = self.sim.now
        msg = yield from self.endpoint.recv(src=src, tag=tag)
        self.comm_time_ms += self.sim.now - start
        self.activity.append(("recv", start, self.sim.now))
        return msg

    def exchange(
        self, nbytes: int, tag: str = "xchg", payloads: Optional[dict[int, Any]] = None
    ) -> ProcessGenerator:
        """One synchronous communication cycle with all topology neighbours.

        Asynchronous sends to every neighbour, then blocking receives from
        every neighbour — the cycle the paper's cost functions are fitted to.
        Returns received messages keyed by neighbour rank.
        """
        payloads = payloads or {}
        for other in self.neighbors():
            yield from self.isend(other, nbytes, tag=tag, payload=payloads.get(other))
        received: dict[int, Any] = {}
        for other in self.neighbors():
            msg = yield from self.recv(from_rank=other, tag=tag)
            received[other] = msg
        return received

    def mark_cycle(self) -> None:
        """Record the current simulated time as a cycle boundary."""
        self.cycle_marks.append(self.sim.now)

    def cycle_times(self) -> list[float]:
        """Durations between consecutive cycle marks."""
        return [b - a for a, b in zip(self.cycle_marks, self.cycle_marks[1:])]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TaskContext rank={self.rank}/{self.size} on {self.processor!r}>"


def wait_all(ctx: TaskContext, events: Sequence[Event]) -> ProcessGenerator:
    """Wait for a batch of completion events (e.g. from isend)."""
    if events:
        yield ctx.sim.all_of(events)
