"""The SPMD run driver: instantiate one task per processor and execute.

:class:`SPMDRun` realizes the paper's §4 model: a set of identical tasks,
one per chosen processor, each owning a region of the data domain.  The
driver wires tasks to MMPS endpoints, applies a placement strategy, runs all
task processes to completion, and reports elapsed time and per-task results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.errors import TopologyError
from repro.hardware.processor import Processor
from repro.mmps.system import MMPS
from repro.sim.process import ProcessGenerator
from repro.spmd.placement import PlacementStrategy, contiguous_placement
from repro.spmd.task import TaskContext
from repro.spmd.topology import Topology

__all__ = ["SPMDRun", "RunResult", "TaskBody"]

#: A task body: generator function taking the task's context.
TaskBody = Callable[[TaskContext], ProcessGenerator]


@dataclass
class RunResult:
    """Outcome of one SPMD execution."""

    elapsed_ms: float
    start_ms: float
    end_ms: float
    task_values: list[Any]
    contexts: list[TaskContext] = field(repr=False, default_factory=list)

    @property
    def size(self) -> int:
        """Number of tasks that ran."""
        return len(self.task_values)

    def per_cycle_times(self) -> list[list[float]]:
        """Each task's durations between its cycle marks."""
        return [ctx.cycle_times() for ctx in self.contexts]

    def mean_cycle_time(self) -> float:
        """Average cycle duration across tasks (0 if none marked)."""
        all_cycles = [t for times in self.per_cycle_times() for t in times]
        return sum(all_cycles) / len(all_cycles) if all_cycles else 0.0

    def compute_utilization(self) -> list[float]:
        """Fraction of the run each task spent computing (vs blocked/idle).

        The per-task breakdown behind the paper's granularity argument:
        region B of Fig 3 is exactly "utilization collapsed".
        """
        if self.elapsed_ms <= 0:
            return [0.0 for _ in self.contexts]
        return [ctx.compute_time_ms / self.elapsed_ms for ctx in self.contexts]

    def comm_fraction(self) -> list[float]:
        """Fraction of the run each task spent blocked in communication."""
        if self.elapsed_ms <= 0:
            return [0.0 for _ in self.contexts]
        return [ctx.comm_time_ms / self.elapsed_ms for ctx in self.contexts]


class SPMDRun:
    """One SPMD program instance over a fixed processor configuration.

    Parameters
    ----------
    mmps:
        The message system (and through it, the network and simulator).
    processors:
        The chosen processors, ordered as the partitioner decided (fast
        cluster first).  One task is placed per processor.
    body:
        The task body generator function.
    topology:
        Communication topology the tasks assume.
    placement:
        Strategy mapping ranks onto the processors (default contiguous).
    """

    def __init__(
        self,
        mmps: MMPS,
        processors: Sequence[Processor],
        body: TaskBody,
        topology: Topology,
        placement: Optional[PlacementStrategy] = None,
    ) -> None:
        if not processors:
            raise TopologyError("SPMD run needs at least one processor")
        seen = {p.proc_id for p in processors}
        if len(seen) != len(processors):
            raise TopologyError("duplicate processors in configuration")
        self.mmps = mmps
        self.sim = mmps.sim
        self.body = body
        self.topology = topology
        strategy = placement or contiguous_placement
        self.placement = strategy(list(processors))
        self.contexts = [
            TaskContext(
                run=self,
                rank=rank,
                placement=self.placement,
                endpoint=mmps.endpoint(proc),
                topology=topology,
            )
            for rank, proc in enumerate(self.placement)
        ]

    def execute(self, *, deadline_ms: Optional[float] = None) -> RunResult:
        """Run every task to completion; returns timing and task values.

        Elapsed time is measured from the common start to the *last* task's
        completion — the completion-time metric the paper minimizes.

        With ``deadline_ms`` set, a run that has not completed within that
        much simulated time is cancelled: every live task is interrupted and
        :class:`~repro.errors.DeadlineExceededError` is raised.  Useful for
        bounding runaway configurations inside larger experiments.
        """
        from repro.errors import DeadlineExceededError

        start = self.sim.now
        procs = [
            self.sim.process(self.body(ctx), name=f"task:{ctx.rank}")
            for ctx in self.contexts
        ]

        def driver() -> ProcessGenerator:
            done = self.sim.all_of(procs)
            if deadline_ms is None:
                values = yield done
                return list(values)
            winner, value = yield self.sim.any_of([done, self.sim.timeout(deadline_ms)])
            if winner is done:
                return list(value)
            for proc in procs:
                if proc.is_alive:
                    proc.interrupt("deadline")
                proc.defuse()
            done.defuse()
            raise DeadlineExceededError(
                f"SPMD run exceeded its {deadline_ms} ms deadline "
                f"({sum(p.is_alive for p in procs)} tasks interrupted)"
            )

        values = self.sim.run_process(driver())
        end = self.sim.now
        return RunResult(
            elapsed_ms=end - start,
            start_ms=start,
            end_ms=end,
            task_values=values,
            contexts=self.contexts,
        )
