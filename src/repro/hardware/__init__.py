"""Simulated heterogeneous workstation hardware.

The paper's §3 network model: homogeneous :class:`Cluster`\\ s of
:class:`Processor`\\ s on private-bandwidth :class:`EthernetSegment`\\ s joined
by a :class:`Router`, assembled and validated by
:class:`HeterogeneousNetwork`.  Era-calibrated machine types live in
:mod:`repro.hardware.presets`.
"""

from repro.hardware.cluster import Cluster, ClusterInfo, ClusterManager
from repro.hardware.network import HeterogeneousNetwork
from repro.hardware.processor import OpKind, Processor, ProcessorSpec
from repro.hardware.router import Router, RouterParams
from repro.hardware.routing import Route, RoutingFabric
from repro.hardware.segment import EthernetParams, EthernetSegment

__all__ = [
    "Cluster",
    "ClusterInfo",
    "ClusterManager",
    "HeterogeneousNetwork",
    "OpKind",
    "Processor",
    "ProcessorSpec",
    "Router",
    "RouterParams",
    "Route",
    "RoutingFabric",
    "EthernetParams",
    "EthernetSegment",
]
