"""Logical-cluster inference from measured wide-area topology.

The paper's network model hands the partitioner a short list of LAN
clusters that somebody already named.  A wide-area system has hundreds to
thousands of nodes and nobody maintains that list; following Estefanel &
Mounié ("Identifying Logical Homogeneous Clusters for Efficient Wide-area
Communications", see PAPERS.md), the grouping is *inferred* from
measurements instead: nodes whose pairwise latency sits under an
intra-cluster threshold (and whose link bandwidth matches) behave as one
logical homogeneous cluster for collective communication, regardless of
administrative boundaries.

This module implements that inference pass:

* :class:`TopologyMeasurement` — the input: a symmetric latency matrix, a
  symmetric bandwidth matrix, and per-node processor identity
  (:func:`measure_fabric` derives one from a built
  :class:`~repro.hardware.network.HeterogeneousNetwork`, summing segment
  acquisition latencies and store-and-forward router costs along each
  route; real deployments would substitute ping/iperf-style data);
* :func:`infer_topology` — threshold clustering: connected components of
  the "close" graph (latency under the threshold, bandwidth within
  tolerance of the pair's faster link), split so every logical cluster
  stays homogeneous in processor type — the §3 model invariant the
  partitioning math relies on;
* :class:`LogicalTopology` — the result, with a **stable content
  fingerprint**: a SHA-256 over the canonical grouping.  Downstream memo
  keys (:class:`~repro.partition.warmstart.SearchCache`) incorporate the
  fingerprint so a re-inferred grouping can never be served decisions that
  were computed for a different one.

Everything here is deterministic: inference is pure arithmetic over the
measurement, and :func:`measure_fabric` reads only static link parameters
(never the simulation clock or any entropy source).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import NetworkModelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.network import HeterogeneousNetwork

__all__ = [
    "TopologyMeasurement",
    "LogicalCluster",
    "LogicalTopology",
    "measure_fabric",
    "infer_topology",
]

#: Default intra-cluster latency ceiling (ms).  A shared LAN segment's
#: acquisition latency is well under this; any route through a
#: store-and-forward router (per-frame cost ~0.8 ms on the paper's
#: testbed) lands far above it.
DEFAULT_LATENCY_THRESHOLD_MS = 0.5

#: Default relative bandwidth tolerance: two nodes only share a logical
#: cluster when the slower of their links is within this fraction of the
#: faster one.
DEFAULT_BANDWIDTH_TOLERANCE = 0.05


@dataclass(frozen=True)
class TopologyMeasurement:
    """Measured wide-area state for ``n`` physical nodes.

    ``latency_ms``/``bandwidth_bps`` are symmetric ``(n, n)`` matrices
    (diagonal ignored).  ``proc_ids`` are stable node identities;
    ``spec_names``/``fp_usec_per_op`` give each node's processor type —
    logical clusters are never allowed to mix types.
    """

    proc_ids: tuple[int, ...]
    spec_names: tuple[str, ...]
    fp_usec_per_op: tuple[float, ...]
    latency_ms: np.ndarray
    bandwidth_bps: np.ndarray
    #: Optional provenance: the physical cluster each node was built in
    #: (inference never reads it; tests use it to check recovery).
    home_clusters: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        n = len(self.proc_ids)
        if len(self.spec_names) != n or len(self.fp_usec_per_op) != n:
            raise NetworkModelError(
                f"measurement shape mismatch: {n} ids, "
                f"{len(self.spec_names)} specs, {len(self.fp_usec_per_op)} rates"
            )
        for name, mat in (("latency", self.latency_ms), ("bandwidth", self.bandwidth_bps)):
            arr = np.asarray(mat, dtype=float)
            if arr.shape != (n, n):
                raise NetworkModelError(
                    f"{name} matrix must be ({n}, {n}), got {arr.shape}"
                )
            if not np.allclose(arr, arr.T):
                raise NetworkModelError(f"{name} matrix must be symmetric")

    @property
    def n_nodes(self) -> int:
        return len(self.proc_ids)


@dataclass(frozen=True)
class LogicalCluster:
    """One inferred homogeneous group of physical nodes."""

    name: str
    members: tuple[int, ...]  #: proc_ids, ascending.
    spec_name: str
    fp_usec_per_op: float
    intra_latency_ms: float  #: worst pairwise latency inside the group.
    link_bandwidth_bps: float  #: slowest intra-group link.

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class LogicalTopology:
    """The inference result: logical clusters plus the thresholds used."""

    clusters: tuple[LogicalCluster, ...]
    latency_threshold_ms: float
    bandwidth_tolerance: float

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def n_nodes(self) -> int:
        return sum(c.size for c in self.clusters)

    def cluster_of(self, proc_id: int) -> LogicalCluster:
        for cluster in self.clusters:
            if proc_id in cluster.members:
                return cluster
        raise NetworkModelError(f"no logical cluster holds node {proc_id}")

    def fingerprint(self) -> str:
        """Stable content hash of the grouping.

        Covers exactly what downstream decisions depend on: which nodes
        form which logical cluster, each cluster's processor identity,
        and the thresholds that produced the grouping.  Float fields go
        through ``repr`` (shortest round-trip form), so the fingerprint is
        reproducible across processes and platforms; display names are
        included because memo keys downstream are name-based.
        """
        payload = repr(
            (
                tuple(
                    (c.name, c.members, c.spec_name, repr(c.fp_usec_per_op))
                    for c in self.clusters
                ),
                repr(self.latency_threshold_ms),
                repr(self.bandwidth_tolerance),
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        """Readable one-line summary, e.g. ``3 logical clusters: L0:4xSparc2 ...``."""
        parts = [f"{c.name}:{c.size}x{c.spec_name}" for c in self.clusters]
        return f"{self.n_clusters} logical clusters: " + " ".join(parts)


def measure_fabric(network: "HeterogeneousNetwork") -> TopologyMeasurement:
    """Derive the measurement matrices from a built network's link model.

    Per node pair the latency is the end-to-end static frame latency on
    the route (source-segment acquisition, then per router: its
    store-and-forward per-frame cost plus the next segment's acquisition);
    the bandwidth is the route's bottleneck link.  Intra-segment pairs see
    just their own segment.  This is the idealized, contention-free number
    a wide-area probe would measure on an idle fabric.
    """
    nodes = list(network.processors())
    n = len(nodes)
    if n == 0:
        raise NetworkModelError("network has no processors to measure")
    clusters = {c.name: c for c in network.clusters}
    latency = np.zeros((n, n))
    bandwidth = np.zeros((n, n))
    # Route properties only depend on the (segment, segment) pair; memoize
    # per cluster pair so the node-pair sweep stays cheap at scale.
    pair_cache: dict[tuple[str, str], tuple[float, float]] = {}

    def link(a_name: str, b_name: str) -> tuple[float, float]:
        key = (a_name, b_name) if a_name <= b_name else (b_name, a_name)
        hit = pair_cache.get(key)
        if hit is not None:
            return hit
        seg_a = clusters[a_name].segment
        if a_name == b_name:
            result = (
                seg_a.params.acquisition_latency_ms,
                seg_a.params.bandwidth_bps,
            )
        else:
            route = network.fabric.route(seg_a.name, clusters[b_name].segment.name)
            lat = route.segments[0].params.acquisition_latency_ms
            for router, seg in zip(route.routers, route.segments[1:]):
                lat += router.params.per_frame_ms + seg.params.acquisition_latency_ms
            result = (lat, min(s.params.bandwidth_bps for s in route.segments))
        pair_cache[key] = result
        return result

    for i, a in enumerate(nodes):
        for j in range(i + 1, n):
            b = nodes[j]
            lat, bw = link(a.cluster_name, b.cluster_name)
            latency[i, j] = latency[j, i] = lat
            bandwidth[i, j] = bandwidth[j, i] = bw
    return TopologyMeasurement(
        proc_ids=tuple(p.proc_id for p in nodes),
        spec_names=tuple(p.spec.name for p in nodes),
        fp_usec_per_op=tuple(p.spec.fp_usec_per_op for p in nodes),
        latency_ms=latency,
        bandwidth_bps=bandwidth,
        home_clusters=tuple(p.cluster_name for p in nodes),
    )


def infer_topology(
    measurement: TopologyMeasurement,
    *,
    latency_threshold_ms: float = DEFAULT_LATENCY_THRESHOLD_MS,
    bandwidth_tolerance: float = DEFAULT_BANDWIDTH_TOLERANCE,
    name_prefix: str = "L",
) -> LogicalTopology:
    """Group nodes into logical homogeneous clusters by threshold clustering.

    Two nodes are *close* when their measured latency is at most
    ``latency_threshold_ms`` and the pair's bandwidth is within
    ``bandwidth_tolerance`` (relative) of the best bandwidth either node
    sees.  Logical clusters are the connected components of the close
    graph, split further so each contains a single processor type (the
    homogeneity invariant every downstream Eq 1-6 fit assumes).  Output
    order and naming are canonical — components sorted by their smallest
    member id — so the same measurement always produces the same
    :class:`LogicalTopology` and therefore the same fingerprint.
    """
    if latency_threshold_ms <= 0:
        raise NetworkModelError(
            f"latency threshold must be positive, got {latency_threshold_ms}"
        )
    if not 0 <= bandwidth_tolerance < 1:
        raise NetworkModelError(
            f"bandwidth tolerance must be in [0, 1), got {bandwidth_tolerance}"
        )
    n = measurement.n_nodes
    lat = np.asarray(measurement.latency_ms, dtype=float)
    bw = np.asarray(measurement.bandwidth_bps, dtype=float)
    best_bw = bw.max(axis=1) if n > 1 else np.zeros(n)

    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i in range(n):
        for j in range(i + 1, n):
            if lat[i, j] > latency_threshold_ms:
                continue
            fast = max(best_bw[i], best_bw[j])
            if fast > 0 and bw[i, j] < fast * (1.0 - bandwidth_tolerance):
                continue
            # Homogeneity split: close nodes of different processor types
            # stay separate logical clusters on the same (low-latency) site.
            if measurement.spec_names[i] != measurement.spec_names[j]:
                continue
            if measurement.fp_usec_per_op[i] != measurement.fp_usec_per_op[j]:
                continue
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[max(ri, rj)] = min(ri, rj)

    groups: dict[int, list[int]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(i)

    clusters = []
    for order, root in enumerate(sorted(groups)):
        idx = groups[root]
        members = tuple(sorted(measurement.proc_ids[i] for i in idx))
        if len(idx) > 1:
            sub_lat = lat[np.ix_(idx, idx)]
            sub_bw = bw[np.ix_(idx, idx)]
            off = ~np.eye(len(idx), dtype=bool)
            intra_lat = float(sub_lat[off].max())
            intra_bw = float(sub_bw[off].min())
        else:
            intra_lat, intra_bw = 0.0, float(best_bw[idx[0]])
        clusters.append(
            LogicalCluster(
                name=f"{name_prefix}{order}",
                members=members,
                spec_name=measurement.spec_names[idx[0]],
                fp_usec_per_op=measurement.fp_usec_per_op[idx[0]],
                intra_latency_ms=intra_lat,
                link_bandwidth_bps=intra_bw,
            )
        )
    return LogicalTopology(
        clusters=tuple(clusters),
        latency_threshold_ms=latency_threshold_ms,
        bandwidth_tolerance=bandwidth_tolerance,
    )
