"""Ethernet segment model: a private shared channel with FIFO arbitration.

The paper's essential property of a segment is *private bandwidth*: all
stations on the segment (workstations plus the router port) share one
channel.  We model the channel as a capacity-1 FIFO resource; a frame holds
the channel for its serialization time.  When ``p`` stations offer frames
concurrently — exactly what a synchronous communication cycle does — each
frame queues behind the others, so the per-cycle cost grows linearly in
``p``: the paper's "offered load is linear in p on ethernet".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.sim import Resource, Simulator
from repro.sim.process import ProcessGenerator
from repro.units import transmission_time_ms

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["EthernetParams", "EthernetSegment"]


@dataclass(frozen=True)
class EthernetParams:
    """Physical/protocol parameters of a segment.

    Defaults approximate mid-90s 10BASE ethernet as seen by a UDP stack:
    1500-byte MTU frames, ~34 bytes of link headers plus the 20+8 bytes of
    IP/UDP headers and interframe gap folded into ``frame_overhead_bytes``,
    and a small fixed medium-acquisition latency per frame.
    """

    bandwidth_bps: float = 10_000_000.0
    mtu_bytes: int = 1472  # UDP payload per frame on a 1500-byte MTU link
    frame_overhead_bytes: int = 58
    acquisition_latency_ms: float = 0.005
    #: Multiplicative jitter (std-dev fraction) on frame times; 0 = exact.
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.mtu_bytes <= 0:
            raise ValueError("mtu must be positive")
        if self.frame_overhead_bytes < 0 or self.acquisition_latency_ms < 0:
            raise ValueError("overheads must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def frame_time_ms(self, payload_bytes: int) -> float:
        """Channel occupancy of one frame carrying ``payload_bytes``."""
        if payload_bytes > self.mtu_bytes:
            raise ValueError(
                f"payload {payload_bytes} exceeds MTU {self.mtu_bytes}; fragment first"
            )
        wire_bytes = payload_bytes + self.frame_overhead_bytes
        return self.acquisition_latency_ms + transmission_time_ms(wire_bytes, self.bandwidth_bps)


class EthernetSegment:
    """One private-bandwidth network segment.

    Stations transmit by running :meth:`transmit_frame` as (part of) a
    simulated process; the call completes when the frame has fully cleared
    the channel.  Delivery to the destination NIC is the caller's concern
    (see :class:`repro.hardware.network.HeterogeneousNetwork`).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        params: EthernetParams | None = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.params = params or EthernetParams()
        self._channel = Resource(sim, capacity=1)
        self._rng = rng
        # Cumulative statistics, useful for utilization-style assertions.
        self.frames_carried = 0
        self.bytes_carried = 0
        self.busy_time_ms = 0.0

    @property
    def queue_length(self) -> int:
        """Frames currently waiting for the channel."""
        return self._channel.queue_length

    def _jittered(self, t: float) -> float:
        if self.params.jitter <= 0.0 or self._rng is None:
            return t
        factor = 1.0 + self.params.jitter * float(self._rng.standard_normal())
        return t * max(factor, 0.1)

    def transmit_frame(self, payload_bytes: int) -> ProcessGenerator:
        """Occupy the channel for one frame of ``payload_bytes``.

        A generator to be ``yield from``-ed inside a simulated process.
        Returns the simulated time at which the frame cleared the channel.
        """
        hold = self._jittered(self.params.frame_time_ms(payload_bytes))
        grant = self._channel.request()
        yield grant
        try:
            yield self.sim.timeout(hold)
        finally:
            self._channel.release()
        self.frames_carried += 1
        self.bytes_carried += payload_bytes
        self.busy_time_ms += hold
        return self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EthernetSegment {self.name!r} {self.params.bandwidth_bps/1e6:.0f} Mb/s>"
