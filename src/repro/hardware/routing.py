"""Multi-hop routing fabrics (relaxing the §3 one-hop assumption).

The paper assumes "every pair of segments is connected by a single router"
so messages travel one hop at most.  A campus-scale metasystem breaks that:
segments hang off different routers joined by a backbone.  This module
models such fabrics as a bipartite segment/router graph and computes
shortest paths with :mod:`networkx`; frames then pay every hop —
store-and-forward at each router plus contention on every traversed
segment.

The strict §3 validation rejects fabrics where any route exceeds one hop;
everything downstream (cost fitting, partitioning) works unchanged because
cross-cluster penalties are *measured end to end* on whatever fabric is in
place.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.errors import NetworkModelError
from repro.hardware.router import Router
from repro.hardware.segment import EthernetSegment

__all__ = ["RoutingFabric", "Route"]


class Route:
    """A resolved path: the segments traversed and the routers between them.

    ``segments[0]`` is the source's segment; each ``routers[i]`` forwards
    from ``segments[i]`` onto ``segments[i+1]``.
    """

    def __init__(self, segments: list[EthernetSegment], routers: list[Router]) -> None:
        if len(routers) != len(segments) - 1:
            raise NetworkModelError(
                f"route shape mismatch: {len(segments)} segments, {len(routers)} routers"
            )
        self.segments = segments
        self.routers = routers

    @property
    def hops(self) -> int:
        """Number of routers traversed."""
        return len(self.routers)

    def min_mtu(self) -> int:
        """The path MTU: the smallest link MTU along the route."""
        return min(seg.params.mtu_bytes for seg in self.segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.segments[0].name]
        for router, seg in zip(self.routers, self.segments[1:]):
            parts.append(f"-[{router.name}]-")
            parts.append(seg.name)
        return "<Route " + "".join(parts) + ">"


class RoutingFabric:
    """The segment/router connectivity graph with shortest-path routing."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._segments: dict[str, EthernetSegment] = {}
        self._routers: dict[str, Router] = {}
        self._route_cache: dict[tuple[str, str], Route] = {}
        #: Monotonic topology revision: bumped on every mutation so
        #: downstream memos (route-derived MTUs, fragment plans in
        #: :class:`repro.mmps.commcache.CommRoundCache`) can detect staleness
        #: with one integer comparison.
        self.version = 0

    def add_segment(self, segment: EthernetSegment) -> None:
        """Register a segment node."""
        if segment.name in self._segments:
            raise NetworkModelError(f"duplicate segment {segment.name!r}")
        self._segments[segment.name] = segment
        self._graph.add_node(("seg", segment.name))
        self._route_cache.clear()
        self.version += 1

    def add_router(self, router: Router) -> None:
        """Register a router node."""
        if router.name in self._routers:
            raise NetworkModelError(f"duplicate router {router.name!r}")
        self._routers[router.name] = router
        self._graph.add_node(("rtr", router.name))
        self._route_cache.clear()
        self.version += 1

    def connect(self, router_name: str, segment_name: str) -> None:
        """Attach a router port to a segment."""
        if router_name not in self._routers:
            raise NetworkModelError(f"unknown router {router_name!r}")
        if segment_name not in self._segments:
            raise NetworkModelError(f"unknown segment {segment_name!r}")
        router = self._routers[router_name]
        segment = self._segments[segment_name]
        if segment.name not in router.segments:
            router.attach(segment)
        self._graph.add_edge(("rtr", router_name), ("seg", segment_name))
        self._route_cache.clear()
        self.version += 1

    @property
    def routers(self) -> dict[str, Router]:
        """Registered routers by name."""
        return dict(self._routers)

    def route(self, src_segment: str, dst_segment: str) -> Route:
        """Shortest path between two segments (cached)."""
        key = (src_segment, dst_segment)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src_segment not in self._segments or dst_segment not in self._segments:
            raise NetworkModelError(
                f"unknown segment in route request: {src_segment!r} -> {dst_segment!r}"
            )
        if src_segment == dst_segment:
            result = Route([self._segments[src_segment]], [])
            self._route_cache[key] = result
            return result
        try:
            path = nx.shortest_path(
                self._graph, ("seg", src_segment), ("seg", dst_segment)
            )
        except nx.NetworkXNoPath:
            raise NetworkModelError(
                f"no route between {src_segment!r} and {dst_segment!r}"
            ) from None
        segments = [self._segments[name] for kind, name in path if kind == "seg"]
        routers = [self._routers[name] for kind, name in path if kind == "rtr"]
        result = Route(segments, routers)
        self._route_cache[key] = result
        return result

    def max_hops(self) -> int:
        """The longest shortest path (in routers) over all segment pairs.

        One BFS per segment instead of one per pair: the graph is bipartite
        (segments alternate with routers), so a segment-to-segment distance
        of ``2h`` edges means ``h`` router hops.  That keeps validation of a
        wide-area hub with a thousand segments at O(K·E) instead of the
        O(K³) a pairwise :meth:`route` sweep costs.
        """
        names = list(self._segments)
        if len(names) < 2:
            return 0
        worst = 0
        for name in names:
            lengths = nx.single_source_shortest_path_length(
                self._graph, ("seg", name)
            )
            reached = 0
            far = 0
            for (kind, other), dist in lengths.items():
                if kind == "seg":
                    reached += 1
                    if dist > far:
                        far = dist
            if reached < len(names):
                missing = next(n for n in names if ("seg", n) not in lengths)
                raise NetworkModelError(
                    f"no route between {name!r} and {missing!r}"
                )
            worst = max(worst, far // 2)
        return worst
