"""Processor models: specifications and per-node runtime state.

A :class:`ProcessorSpec` captures the *type* information the paper's cluster
manager stores — instruction speed for integer and floating point work
(expressed as the paper's ``S_i``: microseconds per operation) and the node's
native data format (used for coercion-cost decisions).  A :class:`Processor`
is one concrete node with mutable load state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.units import ops_time_ms

__all__ = ["OpKind", "ProcessorSpec", "Processor"]

#: Kind of operation for instruction-rate lookups.
OpKind = Literal["fp", "int"]


@dataclass(frozen=True)
class ProcessorSpec:
    """Immutable description of a processor type.

    Parameters
    ----------
    name:
        Type name (``"Sparc2"``, ``"IPC"``...).
    fp_usec_per_op:
        Average floating-point instruction time in µs — the paper's ``S_i``.
    int_usec_per_op:
        Average integer instruction time in µs.
    data_format:
        Wire/data representation tag.  Messages between processors with
        different formats incur a per-byte coercion cost (paper §3).
    comm_speed_factor:
        Relative CPU cost multiplier for protocol processing (send/receive
        software paths).  1.0 means "as fast as the reference (Sparc2-class)
        host"; slower processors get larger factors, reproducing the paper's
        observation that "communication is faster on a cluster of Sun4's
        than on a cluster of Sun3's".
    """

    name: str
    fp_usec_per_op: float
    int_usec_per_op: float
    data_format: str = "xdr-be"
    comm_speed_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.fp_usec_per_op <= 0 or self.int_usec_per_op <= 0:
            raise ValueError(f"instruction rates must be positive: {self}")
        if self.comm_speed_factor <= 0:
            raise ValueError(f"comm_speed_factor must be positive: {self}")

    def usec_per_op(self, kind: OpKind = "fp") -> float:
        """Instruction time in µs for the given operation kind."""
        if kind == "fp":
            return self.fp_usec_per_op
        if kind == "int":
            return self.int_usec_per_op
        raise ValueError(f"unknown operation kind: {kind!r}")

    def relative_power(self, other: "ProcessorSpec", kind: OpKind = "fp") -> float:
        """How many times faster ``self`` is than ``other`` (>1 == faster)."""
        return other.usec_per_op(kind) / self.usec_per_op(kind)


@dataclass
class Processor:
    """One workstation node: a spec plus mutable load state.

    ``load`` is the fraction of CPU consumed by other users' work (0 = idle).
    The cluster manager's threshold policy treats nodes with
    ``load <= threshold`` as available and *equal* (paper §3); the general
    case scales instruction time by ``1 / (1 - load)``.
    """

    proc_id: int
    spec: ProcessorSpec
    cluster_name: str = ""
    load: float = 0.0
    #: Index of this node within its cluster, assigned by the cluster.
    rank_in_cluster: int = field(default=-1)
    #: Fail-stop state: a crashed/vanished node answers no queries and is
    #: never schedulable, regardless of its last reported load.
    alive: bool = True

    def __post_init__(self) -> None:
        self._check_load(self.load)

    @staticmethod
    def _check_load(load: float) -> None:
        if not 0.0 <= load < 1.0:
            raise ValueError(f"load must be in [0, 1), got {load}")

    def set_load(self, load: float) -> None:
        """Update the externally-imposed load fraction."""
        self._check_load(load)
        self.load = load

    def fail(self) -> None:
        """Mark the node crashed (fail-stop).  Idempotent."""
        self.alive = False

    def restore(self) -> None:
        """Bring a failed node back (e.g. between experiment trials)."""
        self.alive = True

    def is_available(self, threshold: float) -> bool:
        """Threshold availability policy (paper §3); dead nodes never are."""
        return self.alive and self.load <= threshold

    def effective_usec_per_op(self, kind: OpKind = "fp", *, load_adjusted: bool = False) -> float:
        """Instruction time, optionally inflated by current sharing load.

        With ``load_adjusted=False`` (the paper's simplifying assumption) all
        available processors of a type are equal; with ``True`` the rate is
        scaled to reflect the CPU share left to us.
        """
        base = self.spec.usec_per_op(kind)
        if load_adjusted and self.load > 0.0:
            return base / (1.0 - self.load)
        return base

    def compute_time_ms(
        self, ops: float, kind: OpKind = "fp", *, load_adjusted: bool = False
    ) -> float:
        """Wall time in ms to execute ``ops`` operations on this node."""
        return ops_time_ms(ops, self.effective_usec_per_op(kind, load_adjusted=load_adjusted))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Processor #{self.proc_id} {self.spec.name} "
            f"cluster={self.cluster_name!r} load={self.load:.2f}>"
        )
