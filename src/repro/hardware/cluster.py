"""Clusters and cluster managers.

A *cluster* is a homogeneous group of processors on one segment (paper §3).
Each cluster designates a :class:`ClusterManager` that stores the segment
bandwidth, node counts, and instruction speeds, monitors per-node load, and
applies the threshold availability policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.hardware.processor import OpKind, Processor, ProcessorSpec
from repro.hardware.segment import EthernetSegment

__all__ = ["Cluster", "ClusterManager", "ClusterInfo"]

#: Default load threshold below which a node counts as available (paper §3:
#: "the threshold can be made sufficiently small").
DEFAULT_AVAILABILITY_THRESHOLD = 0.05


@dataclass(frozen=True)
class ClusterInfo:
    """The manager's advertised state, as enumerated in the paper:

    *bandwidth (bits/sec)*, *processor nodes (total, available)*, and
    *instruction speed (integer, floating point)*.
    """

    cluster_name: str
    bandwidth_bps: float
    total_nodes: int
    available_nodes: int
    int_usec_per_op: float
    fp_usec_per_op: float


class Cluster:
    """A homogeneous group of processors sharing one segment."""

    def __init__(
        self,
        name: str,
        spec: ProcessorSpec,
        processors: Sequence[Processor],
        segment: EthernetSegment,
    ) -> None:
        if not processors:
            raise ValueError(f"cluster {name!r} needs at least one processor")
        for proc in processors:
            if proc.spec != spec:
                raise ValueError(
                    f"cluster {name!r} must be homogeneous; "
                    f"{proc!r} has spec {proc.spec.name!r} != {spec.name!r}"
                )
        self.name = name
        self.spec = spec
        self.processors = list(processors)
        self.segment = segment
        for rank, proc in enumerate(self.processors):
            proc.cluster_name = name
            proc.rank_in_cluster = rank
        self.manager = ClusterManager(self)

    def __len__(self) -> int:
        return len(self.processors)

    def __iter__(self):
        return iter(self.processors)

    def instruction_rate(self, kind: OpKind = "fp") -> float:
        """The cluster's ``S_i`` in µs/op (smaller = faster)."""
        return self.spec.usec_per_op(kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster {self.name!r} {len(self.processors)}x{self.spec.name}>"


class ClusterManager:
    """The designated resource manager of one cluster (shaded node, Fig 1).

    Monitors node load and answers availability queries under the threshold
    policy.  The cooperative cross-cluster gathering step lives in
    :mod:`repro.partition.available`; this class is one participant.
    """

    def __init__(self, cluster: Cluster, threshold: float = DEFAULT_AVAILABILITY_THRESHOLD) -> None:
        if not 0.0 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0, 1), got {threshold}")
        self.cluster = cluster
        self.threshold = threshold
        #: Query counter — lets tests assert the cooperative algorithm's cost.
        self.queries_served = 0

    def available_processors(self) -> list[Processor]:
        """Nodes currently under the load threshold, in cluster-rank order."""
        self.queries_served += 1
        return [p for p in self.cluster.processors if p.is_available(self.threshold)]

    def available_count(self) -> int:
        """Number of available nodes (the paper's ``N_i``)."""
        return len(self.available_processors())

    def observe_loads(self, loads: Iterable[float]) -> None:
        """Bulk-update node loads (e.g. from a monitoring sweep)."""
        loads = list(loads)
        if len(loads) != len(self.cluster.processors):
            raise ValueError(
                f"expected {len(self.cluster.processors)} loads, got {len(loads)}"
            )
        for proc, load in zip(self.cluster.processors, loads):
            proc.set_load(load)

    def info(self) -> ClusterInfo:
        """The advertised cluster state (paper §3 bullet list)."""
        return ClusterInfo(
            cluster_name=self.cluster.name,
            bandwidth_bps=self.cluster.segment.params.bandwidth_bps,
            total_nodes=len(self.cluster.processors),
            available_nodes=len(
                [p for p in self.cluster.processors if p.is_available(self.threshold)]
            ),
            int_usec_per_op=self.cluster.spec.int_usec_per_op,
            fp_usec_per_op=self.cluster.spec.fp_usec_per_op,
        )
