"""The heterogeneous network: clusters on segments joined by a router.

:class:`HeterogeneousNetwork` assembles and validates the paper's §3 model:

* every segment has the same communication bandwidth,
* each segment hosts exactly one homogeneous cluster,
* every pair of segments is joined by a single router (one hop max).

It also provides the physical frame-transfer primitive that the MMPS
message layer builds on: :meth:`transfer_frame` moves one already-fragmented
frame from a source processor to a destination processor, paying segment
contention and (if the clusters differ) router costs.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import NetworkModelError
from repro.hardware.cluster import Cluster
from repro.hardware.processor import OpKind, Processor, ProcessorSpec
from repro.hardware.router import Router, RouterParams
from repro.hardware.segment import EthernetParams, EthernetSegment
from repro.sim import RandomStreams, Simulator, Tracer
from repro.sim.process import ProcessGenerator

__all__ = ["HeterogeneousNetwork"]


class HeterogeneousNetwork:
    """A simulated network of heterogeneous workstation clusters.

    Examples
    --------
    >>> from repro.hardware.presets import SPARC2, IPC
    >>> net = HeterogeneousNetwork(seed=1)
    >>> sparc = net.add_cluster("sparc2", SPARC2, count=6)
    >>> ipc = net.add_cluster("ipc", IPC, count=6)
    >>> net.validate()
    >>> [c.name for c in net.clusters]
    ['sparc2', 'ipc']
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        *,
        seed: int = 0,
        ethernet: Optional[EthernetParams] = None,
        router_params: Optional[RouterParams] = None,
        trace: bool = False,
        auto_router: bool = True,
    ) -> None:
        from repro.hardware.routing import RoutingFabric

        self.sim = sim or Simulator()
        self.streams = RandomStreams(seed)
        self.default_ethernet = ethernet or EthernetParams()
        self.default_router_params = router_params
        self.tracer = Tracer(lambda: self.sim.now, enabled=trace)
        self._clusters: dict[str, Cluster] = {}
        self._cluster_order: list[str] = []
        self._segments: dict[str, EthernetSegment] = {}
        self._next_proc_id = 0
        self.fabric = RoutingFabric()
        #: With ``auto_router=True`` (the §3 model) one shared router joins
        #: every segment; ``False`` lets callers build multi-hop fabrics via
        #: :meth:`add_router` / :meth:`connect`.
        self.auto_router = auto_router
        self.router = Router(self.sim, params=router_params)
        self.fabric.add_router(self.router)

    # -- construction ---------------------------------------------------------

    def add_cluster(
        self,
        name: str,
        spec: ProcessorSpec,
        count: int,
        *,
        ethernet: Optional[EthernetParams] = None,
    ) -> Cluster:
        """Create a segment holding ``count`` nodes of ``spec`` named ``name``."""
        if name in self._clusters:
            raise NetworkModelError(f"duplicate cluster name {name!r}")
        if count < 1:
            raise NetworkModelError(f"cluster {name!r} needs at least one node")
        params = ethernet or self.default_ethernet
        segment = EthernetSegment(
            self.sim,
            name=f"segment:{name}",
            params=params,
            rng=self.streams.get(f"ethernet.{name}"),
        )
        processors = []
        for _ in range(count):
            processors.append(Processor(proc_id=self._next_proc_id, spec=spec))
            self._next_proc_id += 1
        cluster = Cluster(name, spec, processors, segment)
        self._clusters[name] = cluster
        self._cluster_order.append(name)
        self._segments[segment.name] = segment
        self.fabric.add_segment(segment)
        if self.auto_router:
            self.fabric.connect(self.router.name, segment.name)
        return cluster

    def add_router(self, name: str, params: Optional[RouterParams] = None) -> Router:
        """Add an extra router for a multi-hop fabric (``auto_router=False``)."""
        router = Router(self.sim, name=name, params=params or self.default_router_params)
        self.fabric.add_router(router)
        return router

    def connect(self, router_name: str, cluster_name: str) -> None:
        """Attach a router port to a cluster's segment."""
        cluster = self.cluster(cluster_name)
        self.fabric.connect(router_name, cluster.segment.name)

    def validate(self, *, strict: bool = True) -> None:
        """Check the network model assumptions; raise :class:`NetworkModelError`.

        ``strict=True`` enforces the full §3 model (equal segment
        bandwidths).  ``strict=False`` is the *metasystem* relaxation the
        paper's §7 anticipates — machine classes with different interconnect
        speeds (multicomputers next to workstations).  The cost machinery
        tolerates this because Eq 1 functions are fitted per cluster on its
        own segment; only the equal-bandwidth simplification of the
        partitioning analysis is given up.
        """
        if not self._clusters:
            raise NetworkModelError("network has no clusters")
        bandwidths = {
            cluster.segment.params.bandwidth_bps for cluster in self._clusters.values()
        }
        if strict and len(bandwidths) > 1:
            raise NetworkModelError(
                f"segments must have equal bandwidth, got {sorted(bandwidths)} "
                "(pass strict=False for a metasystem-style network)"
            )
        # Homogeneity within a cluster is enforced by Cluster.__init__;
        # one-cluster-per-segment is enforced by construction.  Every pair
        # of segments must be routable, and — in the strict §3 model —
        # within a single hop ("messages will travel one hop at most").
        max_hops = self.fabric.max_hops() if len(self._clusters) > 1 else 0
        if strict and max_hops > 1:
            raise NetworkModelError(
                f"strict model allows one router hop, fabric needs {max_hops} "
                "(pass strict=False for a multi-hop fabric)"
            )

    # -- lookup -----------------------------------------------------------------

    @property
    def clusters(self) -> list[Cluster]:
        """Clusters in creation order."""
        return [self._clusters[name] for name in self._cluster_order]

    def cluster(self, name: str) -> Cluster:
        """Look a cluster up by name."""
        try:
            return self._clusters[name]
        except KeyError:
            raise NetworkModelError(f"no cluster named {name!r}") from None

    def clusters_by_power(self, kind: OpKind = "fp") -> list[Cluster]:
        """Clusters ordered fastest-first by instruction rate (paper §5)."""
        return sorted(self.clusters, key=lambda c: c.instruction_rate(kind))

    def processors(self) -> Iterator[Processor]:
        """All processors, cluster by cluster in creation order."""
        for name in self._cluster_order:
            yield from self._clusters[name].processors

    def processor(self, proc_id: int) -> Processor:
        """Look a processor up by global id."""
        for proc in self.processors():
            if proc.proc_id == proc_id:
                return proc
        raise NetworkModelError(f"no processor with id {proc_id}")

    def total_processors(self) -> int:
        """Total node count across clusters."""
        return sum(len(c) for c in self.clusters)

    def crosses_router(self, src: Processor, dst: Processor) -> bool:
        """Whether a message between the two nodes passes through the router."""
        return src.cluster_name != dst.cluster_name

    # -- physical transfer ---------------------------------------------------------

    def path_mtu(self, src: Processor, dst: Processor) -> int:
        """Smallest link MTU along the route between two processors."""
        route = self.fabric.route(
            self._clusters[src.cluster_name].segment.name,
            self._clusters[dst.cluster_name].segment.name,
        )
        return route.min_mtu()

    def transfer_frame(self, src: Processor, dst: Processor, payload_bytes: int) -> ProcessGenerator:
        """Move one frame from ``src`` to ``dst``; completes at delivery.

        Pays source-segment contention, then — for each router on the route
        — store-and-forward delay plus contention on the next segment.
        Host CPU costs (protocol processing, coercion) belong to the MMPS
        layer above.
        """
        route = self.fabric.route(
            self._clusters[src.cluster_name].segment.name,
            self._clusters[dst.cluster_name].segment.name,
        )
        yield from route.segments[0].transmit_frame(payload_bytes)
        for router, segment in zip(route.routers, route.segments[1:]):
            self.tracer.record(
                "router",
                "forward",
                via=router.name,
                src=src.proc_id,
                dst=dst.proc_id,
                nbytes=payload_bytes,
            )
            yield from router.forward_frame(payload_bytes, segment.name)
        self.tracer.record(
            "deliver", "frame", src=src.proc_id, dst=dst.proc_id, nbytes=payload_bytes
        )
        return self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        desc = ", ".join(f"{len(c)}x{c.spec.name}" for c in self.clusters)
        return f"<HeterogeneousNetwork [{desc}]>"
