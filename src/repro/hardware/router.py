"""Router model: store-and-forward between two segments.

The paper's empirical finding (§3) is that "the router may be treated as an
additional station that contends for the ethernet channel plus internal
router delay", with the delay a *per byte* penalty.  We model exactly that:
a forwarded frame pays an internal latency plus per-byte processing inside
the router, then contends for the destination segment's channel like any
other station.  Contention on the source segment was already paid by the
original transmission.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Simulator
from repro.sim.process import ProcessGenerator
from repro.hardware.segment import EthernetSegment

__all__ = ["RouterParams", "Router"]


@dataclass(frozen=True)
class RouterParams:
    """Forwarding costs of a router.

    ``per_byte_ms`` is the paper's ``T_router`` slope (their measured value
    for the Sparc2/IPC testbed was ≈ 0.0006 ms/byte); ``per_frame_ms`` is a
    small fixed lookup/queueing cost per frame.
    """

    per_byte_ms: float = 0.0006
    per_frame_ms: float = 0.05

    def __post_init__(self) -> None:
        if self.per_byte_ms < 0 or self.per_frame_ms < 0:
            raise ValueError("router costs must be non-negative")

    def forward_delay_ms(self, payload_bytes: int) -> float:
        """Internal router delay for one frame (excludes re-transmission)."""
        return self.per_frame_ms + self.per_byte_ms * payload_bytes


class Router:
    """A store-and-forward router joining every pair of attached segments.

    One router object connecting all segments is equivalent, under the
    paper's one-hop assumption, to a single router between every pair.
    """

    def __init__(self, sim: Simulator, name: str = "router", params: RouterParams | None = None) -> None:
        self.sim = sim
        self.name = name
        self.params = params or RouterParams()
        self._segments: dict[str, EthernetSegment] = {}
        self.frames_forwarded = 0
        self.bytes_forwarded = 0

    def attach(self, segment: EthernetSegment) -> None:
        """Connect a segment to this router."""
        if segment.name in self._segments:
            raise ValueError(f"segment {segment.name!r} already attached to {self.name!r}")
        self._segments[segment.name] = segment

    @property
    def segments(self) -> tuple[str, ...]:
        """Names of attached segments."""
        return tuple(self._segments)

    def connects(self, seg_a: str, seg_b: str) -> bool:
        """Whether this router joins the two named segments."""
        return seg_a in self._segments and seg_b in self._segments and seg_a != seg_b

    def forward_frame(self, payload_bytes: int, dst_segment: str) -> ProcessGenerator:
        """Forward one already-received frame onto ``dst_segment``.

        Pays the internal router delay, then contends for the destination
        channel.  To be ``yield from``-ed by the network's transfer process.
        """
        segment = self._segments.get(dst_segment)
        if segment is None:
            raise ValueError(f"router {self.name!r} not attached to {dst_segment!r}")
        yield self.sim.timeout(self.params.forward_delay_ms(payload_bytes))
        yield from segment.transmit_frame(payload_bytes)
        self.frames_forwarded += 1
        self.bytes_forwarded += payload_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Router {self.name!r} segments={list(self._segments)}>"
