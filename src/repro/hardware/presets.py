"""Era-calibrated processor specs and canonical network presets.

Instruction rates follow the paper where given (§6: ``S_i ≈ 0.3`` µs/flop for
the Sun4 Sparc2 and ``0.6`` µs/flop for the Sun4 IPC, from benchmarking
several floating point operations) and period-plausible figures for the other
machine types named in Fig 1.  ``comm_speed_factor`` scales protocol-stack
CPU costs relative to a Sparc2-class host, reproducing the observation that
faster processors communicate faster on identical segments.
"""

from __future__ import annotations

from repro.benchmarking.costfuncs import CommCostFunction, LinearByteCost
from repro.benchmarking.database import CostDatabase
from repro.hardware.network import HeterogeneousNetwork
from repro.hardware.processor import ProcessorSpec
from repro.hardware.router import RouterParams
from repro.hardware.segment import EthernetParams

__all__ = [
    "SPARC2",
    "IPC",
    "SUN3",
    "HP9000",
    "RS6000",
    "I860",
    "MULTICOMPUTER_NODE",
    "ETHERNET_10MBPS",
    "MULTICOMPUTER_LINK",
    "PAPER_ROUTER",
    "paper_testbed",
    "metasystem_network",
    "mixed_format_network",
    "three_cluster_network",
    "WIDE_AREA_SITE_TEMPLATES",
    "wide_area_network",
    "wide_area_cost_database",
]

#: Sun4 SPARCstation 2 — the paper's fast cluster (S_i ≈ 0.3 µs/flop).
SPARC2 = ProcessorSpec(
    name="Sparc2",
    fp_usec_per_op=0.3,
    int_usec_per_op=0.05,
    data_format="xdr-be",
    comm_speed_factor=1.0,
)

#: Sun4 IPC — the paper's slow cluster (S_i ≈ 0.6 µs/flop, ≈ 2x slower).
#: The protocol path is markedly slower than the Sparc2's (the paper's
#: fitted C2 constants are ~1.6-1.7x the C1 ones at equal p and b).
IPC = ProcessorSpec(
    name="IPC",
    fp_usec_per_op=0.6,
    int_usec_per_op=0.08,
    data_format="xdr-be",
    comm_speed_factor=2.4,
)

#: Sun3 — an older generation, markedly slower at both compute and comms.
SUN3 = ProcessorSpec(
    name="Sun3",
    fp_usec_per_op=2.5,
    int_usec_per_op=0.4,
    data_format="xdr-be",
    comm_speed_factor=3.5,
)

#: HP 9000/700-class PA-RISC workstation (Fig 1's "HP" cluster).
HP9000 = ProcessorSpec(
    name="HP9000",
    fp_usec_per_op=0.2,
    int_usec_per_op=0.04,
    data_format="xdr-be",
    comm_speed_factor=0.8,
)

#: IBM RS/6000 (Fig 1's third cluster) — strong floating point for the era.
RS6000 = ProcessorSpec(
    name="RS6000",
    fp_usec_per_op=0.15,
    int_usec_per_op=0.04,
    data_format="xdr-be",
    comm_speed_factor=0.7,
)

#: A little-endian machine type; talking to the others costs coercion.
I860 = ProcessorSpec(
    name="i860",
    fp_usec_per_op=0.25,
    int_usec_per_op=0.06,
    data_format="ieee-le",
    comm_speed_factor=1.0,
)

#: Shared 10 Mb/s ethernet, the paper testbed's segment type.  The per-frame
#: acquisition latency models CSMA/CD deference and interrupt dispatch on a
#: busy shared segment; it is what gives the fitted Eq 1 its per-processor
#: latency term (the paper's c2 ≈ 1.1-1.9 ms/proc).
ETHERNET_10MBPS = EthernetParams(
    bandwidth_bps=10_000_000.0,
    mtu_bytes=1472,
    frame_overhead_bytes=58,
    acquisition_latency_ms=0.15,
    jitter=0.0,
)

#: Router costs: a per-byte penalty near the paper's measured
#: T_router ≈ 0.0006·b plus an early-90s store-and-forward frame latency.
PAPER_ROUTER = RouterParams(per_byte_ms=0.0008, per_frame_ms=0.8)


def paper_testbed(
    *, seed: int = 0, trace: bool = False, jitter: float = 0.0
) -> HeterogeneousNetwork:
    """The §6 evaluation network: 6 Sparc2's + 6 IPC's, two segments, router.

    Returns a validated :class:`HeterogeneousNetwork` whose first cluster is
    the Sparc2 segment (cluster ``C1`` in the paper's notation) and whose
    second is the IPC segment (``C2``).  ``jitter`` adds multiplicative
    per-frame channel noise (std-dev fraction) for UDP-style
    non-determinism studies; the default is the exact deterministic model.
    """
    ethernet = ETHERNET_10MBPS
    if jitter > 0.0:
        ethernet = EthernetParams(
            bandwidth_bps=ETHERNET_10MBPS.bandwidth_bps,
            mtu_bytes=ETHERNET_10MBPS.mtu_bytes,
            frame_overhead_bytes=ETHERNET_10MBPS.frame_overhead_bytes,
            acquisition_latency_ms=ETHERNET_10MBPS.acquisition_latency_ms,
            jitter=jitter,
        )
    net = HeterogeneousNetwork(
        seed=seed, ethernet=ethernet, router_params=PAPER_ROUTER, trace=trace
    )
    net.add_cluster("sparc2", SPARC2, count=6)
    net.add_cluster("ipc", IPC, count=6)
    net.validate()
    return net


#: A multicomputer node class (iPSC/Meiko-era): strong CPU, and a much
#: faster private interconnect than office ethernet.
MULTICOMPUTER_NODE = ProcessorSpec(
    name="mc-node",
    fp_usec_per_op=0.12,
    int_usec_per_op=0.03,
    data_format="xdr-be",
    comm_speed_factor=0.4,
)

#: The multicomputer's internal interconnect (80 Mb/s, low per-frame cost).
MULTICOMPUTER_LINK = EthernetParams(
    bandwidth_bps=80_000_000.0,
    mtu_bytes=4096,
    frame_overhead_bytes=32,
    acquisition_latency_ms=0.02,
    jitter=0.0,
)


def metasystem_network(*, seed: int = 0, trace: bool = False) -> HeterogeneousNetwork:
    """A §7 metasystem: a multicomputer next to a workstation cluster.

    Violates the strict equal-bandwidth assumption (80 vs 10 Mb/s), so it
    validates only with ``strict=False`` — the relaxation the paper's
    future work calls for.
    """
    net = HeterogeneousNetwork(
        seed=seed, ethernet=ETHERNET_10MBPS, router_params=PAPER_ROUTER, trace=trace
    )
    net.add_cluster("meiko", MULTICOMPUTER_NODE, count=8, ethernet=MULTICOMPUTER_LINK)
    net.add_cluster("sparc2", SPARC2, count=6)
    net.validate(strict=False)
    return net


def mixed_format_network(*, seed: int = 0, trace: bool = False) -> HeterogeneousNetwork:
    """Sparc2s next to little-endian i860s: crossing costs coercion (§3)."""
    net = HeterogeneousNetwork(
        seed=seed, ethernet=ETHERNET_10MBPS, router_params=PAPER_ROUTER, trace=trace
    )
    net.add_cluster("sparc2", SPARC2, count=6)
    net.add_cluster("i860", I860, count=6)
    net.validate()
    return net


def three_cluster_network(*, seed: int = 0, trace: bool = False) -> HeterogeneousNetwork:
    """Fig 1's example: Sun4, HP, and RS/6000 clusters on three segments."""
    net = HeterogeneousNetwork(
        seed=seed, ethernet=ETHERNET_10MBPS, router_params=PAPER_ROUTER, trace=trace
    )
    net.add_cluster("sun4", SPARC2, count=4)
    net.add_cluster("hp", HP9000, count=4)
    net.add_cluster("rs6000", RS6000, count=4)
    net.validate()
    return net


#: Wide-area site templates: each names a deployment blueprint — processor
#: type, nodes per site, and the site's fitted Eq 1 constants (1-D stencil
#: exchange, no bandwidth quirk).  Every site stamped from one template is
#: *identical*, which is exactly what makes wide-area pools collapse into
#: a handful of equivalence classes (see :mod:`repro.partition.collapse`).
WIDE_AREA_SITE_TEMPLATES: tuple[dict, ...] = (
    {"tag": "sparc2", "spec": SPARC2, "count": 6, "c": (1.0, 1.1, 0.0005, 0.0010)},
    {"tag": "ipc", "spec": IPC, "count": 6, "c": (1.5, 1.8, 0.0008, 0.0019)},
    {"tag": "sun3", "spec": SUN3, "count": 4, "c": (2.2, 2.6, 0.0011, 0.0030)},
    {"tag": "hp9000", "spec": HP9000, "count": 5, "c": (0.8, 0.9, 0.0004, 0.0008)},
    {"tag": "rs6000", "spec": RS6000, "count": 4, "c": (0.7, 0.85, 0.0004, 0.0007)},
    {"tag": "i860", "spec": I860, "count": 8, "c": (1.1, 1.2, 0.0005, 0.0011)},
)

#: The wide-area backbone: every site pair crosses the same leased-line
#: infrastructure, so one uniform router penalty covers all O(K²) pairs
#: (``CostDatabase.router_default``).
WIDE_AREA_BACKBONE_ROUTER = RouterParams(per_byte_ms=0.0012, per_frame_ms=2.5)


def wide_area_network(
    n_clusters: int, *, seed: int = 0, trace: bool = False
) -> HeterogeneousNetwork:
    """A deterministic wide-area pool of ``n_clusters`` sites.

    Sites are stamped from :data:`WIDE_AREA_SITE_TEMPLATES`, the template
    per site drawn from the network's own seeded stream (name
    ``"widearea.sites"``) so the same ``(n_clusters, seed)`` always builds
    the same pool.  Every site is one ethernet segment behind the shared
    backbone router; site names are ``site0000-<template>`` so the
    template is readable in decisions and traces.
    """
    if n_clusters < 1:
        raise ValueError(f"need at least one site, got {n_clusters}")
    net = HeterogeneousNetwork(
        seed=seed,
        ethernet=ETHERNET_10MBPS,
        router_params=WIDE_AREA_BACKBONE_ROUTER,
        trace=trace,
    )
    rng = net.streams.get("widearea.sites")
    picks = rng.integers(0, len(WIDE_AREA_SITE_TEMPLATES), size=n_clusters)
    for i, pick in enumerate(picks):
        template = WIDE_AREA_SITE_TEMPLATES[int(pick)]
        net.add_cluster(
            f"site{i:04d}-{template['tag']}",
            template["spec"],
            count=template["count"],
        )
    net.validate()
    return net


def wide_area_cost_database(network: HeterogeneousNetwork) -> CostDatabase:
    """Fitted costs for a :func:`wide_area_network` pool.

    Per site the Eq 1 constants come from its template (identical across
    sites of one template — measured fits on identical hardware); the
    crossing penalty is the uniform backbone default rather than O(K²)
    per-pair entries.
    """
    by_spec = {
        template["spec"].name: template["c"]
        for template in WIDE_AREA_SITE_TEMPLATES
    }
    db = CostDatabase()
    for cluster in network.clusters:
        constants = by_spec.get(cluster.spec.name)
        if constants is None:
            raise ValueError(
                f"cluster {cluster.name!r} has no wide-area template "
                f"(spec {cluster.spec.name!r})"
            )
        c1, c2, c3, c4 = constants
        db.add_comm(
            CommCostFunction(
                cluster=cluster.name,
                topology="1-D",
                c1=c1,
                c2=c2,
                c3=c3,
                c4=c4,
                abs_bandwidth_quirk=False,
            )
        )
    db.set_router_default(
        LinearByteCost(
            "*",
            "*",
            "router",
            intercept_ms=WIDE_AREA_BACKBONE_ROUTER.per_frame_ms,
            slope_ms_per_byte=WIDE_AREA_BACKBONE_ROUTER.per_byte_ms,
        )
    )
    return db
