#!/usr/bin/env python
"""Scenario: a colleague starts a build on one of your workstations mid-run.

The paper's §7 sketches the answer: "dynamically recompute the partition
vector in the event of load imbalance."  This example runs the stencil with
epoch-based monitoring, injects a competing 60% load on one node, and shows
the runtime shedding rows from the slowed node — then taking them back when
the load disappears.

Run:  python examples/dynamic_rebalancing.py
"""

from repro import MMPS, paper_testbed
from repro.apps.stencil_dynamic import (
    LoadEvent,
    apply_load_schedule,
    run_stencil_dynamic,
)
from repro.model import PartitionVector


def run(enabled: bool, events) -> tuple[float, list[list[int]]]:
    net = paper_testbed()
    apply_load_schedule(net, events)
    mmps = MMPS(net)
    procs = list(net.cluster("sparc2"))[:4]
    result = run_stencil_dynamic(
        mmps,
        procs,
        PartitionVector([150] * 4),
        600,
        iterations=40,
        epoch=5,
        enabled=enabled,
    )
    return result.elapsed_ms, result.vectors


def main() -> None:
    # Part 1: a build starts on node 1 and stays for the whole run.
    lasting = [LoadEvent(at_ms=50.0, proc_id=1, load=0.6)]
    static_ms, _ = run(enabled=False, events=list(lasting))
    dynamic_ms, vectors = run(enabled=True, events=list(lasting))
    print("-- competing job occupies node 1 for the whole run --")
    print(f"vector after rebalancing: {vectors[-1]}")
    print(f"static  (no repartitioning): {static_ms:8.0f} ms")
    print(f"dynamic (epoch rebalancing): {dynamic_ms:8.0f} ms")
    print(f"recovered {100 * (static_ms - dynamic_ms) / static_ms:.0f}% of the lost time")
    assert dynamic_ms < static_ms

    # Part 2: the job finishes mid-run — rows flow back automatically.
    transient = [
        LoadEvent(at_ms=50.0, proc_id=1, load=0.6),
        LoadEvent(at_ms=4000.0, proc_id=1, load=0.0),
    ]
    _, history = run(enabled=True, events=list(transient))
    print("\n-- the job finishes mid-run: vector history (rows per node) --")
    for vec in history:
        print(f"  {vec}")
    assert history[-1][1] > min(v[1] for v in history)
    print("node 1 shed rows while loaded and took them back afterwards.")


if __name__ == "__main__":
    main()
