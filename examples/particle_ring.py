#!/usr/bin/env python
"""Scenario: all-pairs particle interactions over a ring pipeline.

The paper's PDU is deliberately more general than a matrix row — "a
collection of particles in a particle simulation".  Here each task owns a
slice of particles sized by the partition vector (Eq 3: the 2x-faster
Sparc2s get 2x the particles), blocks circulate around a ring, and the
per-particle potentials are verified against a direct all-pairs oracle.

Run:  python examples/particle_ring.py
"""

import numpy as np

from repro import MMPS, gather_available_resources, partition, paper_testbed
from repro.apps import nbody_computation, reference_potentials, run_nbody
from repro.benchmarking import Workbench, build_cost_database
from repro.spmd import Topology


def main() -> None:
    num_particles, steps = 240, 2
    rng = np.random.default_rng(3)
    positions = np.sort(rng.random(num_particles) * 1000.0)

    workbench = Workbench(lambda: paper_testbed())
    cost_db = build_cost_database(
        workbench,
        clusters=["sparc2", "ipc"],
        topologies=[Topology.RING],
        p_values=(2, 3, 4, 6),
        b_values=(64, 512, 1024, 1920),
        cycles=3,
    )

    network = paper_testbed()
    resources = gather_available_resources(network)
    decision = partition(nbody_computation(num_particles, steps), resources, cost_db)
    print(f"partitioner chose: {decision.describe()}")
    print(f"particles per task: {list(decision.vector)}")
    sparc_share = decision.vector[0]
    ipc_ranks = decision.config.counts_by_name().get("ipc", 0)
    if ipc_ranks:
        ipc_share = decision.vector[decision.config.counts_by_name()["sparc2"]]
        print(
            f"Eq 3 balance: each Sparc2 holds {sparc_share}, each IPC {ipc_share} "
            f"(ratio ~{sparc_share / ipc_share:.1f}, matching the 2x speed ratio)"
        )

    mmps = MMPS(network)
    result = run_nbody(
        mmps,
        decision.config.processors(),
        decision.vector,
        positions,
        steps=steps,
    )
    np.testing.assert_allclose(
        result.potentials, reference_potentials(positions), rtol=1e-9
    )
    print(f"simulated elapsed: {result.elapsed_ms:.0f} ms over {steps} steps")
    print("potentials match the direct all-pairs reference.")


if __name__ == "__main__":
    main()
