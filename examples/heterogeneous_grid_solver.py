#!/usr/bin/env python
"""Scenario: iteratively smooth a measured field on whatever machines are free.

A lab has two workstation clusters; some nodes are busy with other users'
work.  The runtime partitioner sees only the *available* nodes (threshold
policy, §3), picks a configuration, and the numeric result is verified
against a sequential solver — demonstrating that heterogeneous, load-aware
decomposition changes the timing but never the answer.

Run:  python examples/heterogeneous_grid_solver.py
"""

import numpy as np

from repro import MMPS, gather_available_resources, partition, paper_testbed
from repro.apps import run_stencil, sequential_stencil, stencil_computation
from repro.experiments import fitted_cost_database


def main() -> None:
    n, iterations = 120, 8
    rng = np.random.default_rng(7)
    field = rng.normal(size=(n, n))  # the "measured" noisy field

    # Three of the Sparc2s and one IPC are busy with other users.
    network = paper_testbed()
    network.cluster("sparc2").manager.observe_loads([0.0, 0.0, 0.0, 0.6, 0.8, 0.9])
    network.cluster("ipc").manager.observe_loads([0.0, 0.0, 0.0, 0.0, 0.0, 0.7])
    resources = gather_available_resources(network)
    for res in resources:
        print(f"cluster {res.name:8s}: {res.n_available} of {len(res.cluster)} nodes free")

    computation = stencil_computation(n, overlap=True, cycles=iterations)
    decision = partition(computation, resources, fitted_cost_database())
    print(f"\npartitioner chose: {decision.describe()}")
    print(f"rows per task:     {list(decision.vector)}")

    # Execute numerically on the chosen nodes; messages carry real rows.
    mmps = MMPS(network)
    result = run_stencil(
        mmps,
        decision.config.processors(),
        decision.vector,
        n,
        iterations=iterations,
        overlap=True,
        initial_grid=field,
    )
    expected = sequential_stencil(field, iterations)
    np.testing.assert_allclose(result.grid, expected, rtol=1e-12, atol=1e-12)
    print(f"\nsimulated elapsed: {result.elapsed_ms:.0f} ms")
    print("distributed result matches the sequential solver bit-for-bit tolerance.")

    # Contrast: if we had naively used *all twelve* nodes including busy
    # ones treated as free, the loaded stragglers would gate every cycle.
    loaded = paper_testbed()
    all_procs = list(loaded.processors())
    from repro import balanced_partition_vector

    naive_vec = balanced_partition_vector([0.3] * 6 + [0.6] * 6, n)
    naive = run_stencil(
        MMPS(loaded), all_procs, naive_vec, n, iterations=iterations, overlap=True
    )
    print(
        f"for reference, all 12 nodes (if they were free): {naive.elapsed_ms:.0f} ms "
        "- at this small N, more nodes are not better."
    )


if __name__ == "__main__":
    main()
