#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Prints, in order: the E4 calibration comparison, Table 1 (paper constants
and fitted constants), Table 2 with predicted/simulated minima, the Fig 3
curves, and the ablations.  The same artifacts are produced (and persisted)
by ``pytest benchmarks/ --benchmark-only``.

Run:  python examples/reproduce_paper.py      (~30 s)
"""

from repro.experiments import (
    ablation_report,
    calibration_report,
    fig3_report,
    fitted_cost_database,
    paper_cost_database,
    table1_report,
    table2_report,
)


def main() -> None:
    print(calibration_report())
    print()
    print(table1_report(paper_cost_database(), source="paper"))
    print()
    print(table1_report(fitted_cost_database(), source="fitted"))
    print()
    print(table2_report())
    print()
    for n in (60, 300, 1200):
        print(fig3_report(n))
        print()
    print(ablation_report())


if __name__ == "__main__":
    main()
