#!/usr/bin/env python
"""Scenario: a campus metasystem — multicomputer, workstations, two hops.

The paper's §7 closes with metasystems: "machines of different classes such
as multicomputers and workstations together", which requires "relaxing the
assumptions about the network model".  This example builds exactly that —
a fast multicomputer on an 80 Mb/s interconnect next to a Sparc2 cluster on
office ethernet, plus a third cluster two router hops away — fits cost
functions end to end on the multi-hop fabric, and compares the paper's
prefix heuristic with the general local-search partitioner.

Run:  python examples/metasystem_campus.py
"""

from repro.benchmarking import Workbench, build_cost_database
from repro.hardware import HeterogeneousNetwork, RouterParams
from repro.hardware.presets import (
    ETHERNET_10MBPS,
    IPC,
    MULTICOMPUTER_LINK,
    MULTICOMPUTER_NODE,
    SPARC2,
)
from repro.apps import stencil_computation
from repro.partition import (
    gather_available_resources,
    general_partition,
    partition,
)
from repro.spmd import Topology


def build_campus() -> HeterogeneousNetwork:
    net = HeterogeneousNetwork(
        ethernet=ETHERNET_10MBPS, auto_router=False
    )
    net.add_cluster("meiko", MULTICOMPUTER_NODE, 8, ethernet=MULTICOMPUTER_LINK)
    net.add_cluster("sparc2", SPARC2, 6)
    net.add_cluster("ipc", IPC, 6)
    net.add_router("machine-room", RouterParams(per_byte_ms=0.0008, per_frame_ms=0.8))
    net.add_router("backbone", RouterParams(per_byte_ms=0.0010, per_frame_ms=1.2))
    net.connect("machine-room", "meiko")
    net.connect("machine-room", "sparc2")
    net.connect("backbone", "sparc2")
    net.connect("backbone", "ipc")
    net.validate(strict=False)  # unequal bandwidths + two hops: metasystem mode
    return net


def main() -> None:
    from repro.experiments import network_diagram

    net = build_campus()
    print(network_diagram(net))
    print("\nfabric routes:")
    for a, b in (("meiko", "sparc2"), ("meiko", "ipc")):
        route = net.fabric.route(f"segment:{a}", f"segment:{b}")
        print(f"  {a:8s} -> {b:8s}: {route.hops} hop(s)")

    print("\nfitting cost functions on the fabric (offline phase)...")
    workbench = Workbench(build_campus)
    db = build_cost_database(
        workbench,
        clusters=["meiko", "sparc2", "ipc"],
        topologies=[Topology.ONE_D],
        p_values=(2, 4, 6),
        b_values=(240, 1200, 2400, 4800),
        cycles=3,
    )
    for (name, _topo), fn in sorted(db.comm.items()):
        print(f"  T_comm[{name:7s}]: R^2={fn.r_squared:.4f}")
    print(f"  1-hop penalty (meiko<->sparc2, b=2400): "
          f"{db.router_cost('meiko', 'sparc2', 2400):.2f} ms")
    print(f"  2-hop penalty (meiko<->ipc,    b=2400): "
          f"{db.router_cost('meiko', 'ipc', 2400):.2f} ms")

    resources = gather_available_resources(net)
    for n in (300, 1200, 4800):
        comp = stencil_computation(n, overlap=True)
        prefix = partition(comp, resources, db)
        general = general_partition(comp, resources, db)
        print(f"\nN={n}:")
        print(f"  prefix heuristic : {prefix.describe()}")
        print(f"  general search   : {general.describe()}")


if __name__ == "__main__":
    main()
