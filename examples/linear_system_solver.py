#!/usr/bin/env python
"""Scenario: solve a dense linear system with distributed GE + pivoting.

Gaussian elimination is the paper's example of *non-uniform* computational
and communication complexity (§6): the work shrinks every cycle and the
pivot row is broadcast — a bandwidth-limited topology where extra segments
buy nothing.  This example partitions the solver at runtime (broadcast cost
functions fitted offline), runs it, and checks the answer against NumPy.

Run:  python examples/linear_system_solver.py
"""

import numpy as np

from repro import MMPS, gather_available_resources, partition, paper_testbed
from repro.apps import gauss_computation, run_gauss
from repro.benchmarking import Workbench, build_cost_database
from repro.spmd import Topology


def main() -> None:
    n = 48
    rng = np.random.default_rng(11)
    a = rng.random((n, n)) + n * np.eye(n)
    b = rng.random(n)

    # Offline phase: fit 1-D *and* broadcast cost functions.
    workbench = Workbench(lambda: paper_testbed())
    cost_db = build_cost_database(
        workbench,
        clusters=["sparc2", "ipc"],
        topologies=[Topology.ONE_D, Topology.BROADCAST],
        p_values=(2, 3, 4, 6),
        b_values=(64, 256, 1024, 2048),
        cycles=3,
    )
    bc = cost_db.comm[("sparc2", "broadcast")]
    print(
        f"fitted broadcast cost (sparc2): "
        f"{bc.c1:+.2f} {bc.c2:+.2f}p + b({bc.c3:+.5f} {bc.c4:+.5f}p), R^2={bc.r_squared:.3f}"
    )

    network = paper_testbed()
    resources = gather_available_resources(network)
    decision = partition(gauss_computation(n), resources, cost_db)
    print(f"partitioner chose: {decision.describe()}")
    print(
        "note how few processors GE earns at this size - the broadcast per "
        "elimination step is expensive on 10 Mb/s ethernet."
    )

    mmps = MMPS(network)
    result = run_gauss(
        mmps,
        decision.config.processors(),
        decision.vector,
        n,
        matrix=a,
        rhs=b,
    )
    np.testing.assert_allclose(result.solution, np.linalg.solve(a, b), rtol=1e-9)
    print(f"simulated elapsed: {result.elapsed_ms:.0f} ms")
    print("solution matches numpy.linalg.solve.")


if __name__ == "__main__":
    main()
