#!/usr/bin/env python
"""Quickstart: partition a stencil computation at runtime and validate it.

Walks the full pipeline of the paper on the simulated §6 testbed
(6 Sparc2's + 6 IPC's on two ethernet segments joined by a router):

1. gather the available processors from the cluster managers;
2. fit the topology cost functions offline (Eq 1);
3. annotate the computation with callbacks (§4);
4. run the partitioning heuristic (Eq 3-6, §5);
5. execute the chosen configuration and compare against alternatives.

Run:  python examples/quickstart.py
"""

from repro import MMPS, gather_available_resources, partition, paper_testbed
from repro.apps import run_stencil, stencil_computation
from repro.experiments import fitted_cost_database


def main() -> None:
    n = 600  # grid size; the PDU is one of the N rows

    # 1. Resource discovery: each cluster manager reports available nodes.
    network = paper_testbed()
    resources = gather_available_resources(network)
    for res in resources:
        info = res.cluster.manager.info()
        print(
            f"cluster {res.name:8s}: {info.available_nodes}/{info.total_nodes} nodes, "
            f"S_i = {info.fp_usec_per_op} usec/flop, "
            f"{info.bandwidth_bps / 1e6:.0f} Mb/s segment"
        )

    # 2. Offline cost functions (cached; run once per network, like the paper).
    cost_db = fitted_cost_database()

    # 3. The program's callback annotations: num_PDUs = N, 5N flops per row,
    #    1-D border exchange of 4N bytes, overlapped (STEN-2).
    computation = stencil_computation(n, overlap=True, cycles=10)

    # 4. Partition at runtime.
    decision = partition(computation, resources, cost_db)
    print(f"\ndecision: {decision.describe()}")
    print(f"partition vector: {list(decision.vector)} (sums to {decision.vector.total})")
    print(
        f"estimate: T_comp={decision.estimate.t_comp_ms:.1f} ms "
        f"T_comm={decision.estimate.t_comm_ms:.1f} ms "
        f"T_overlap={decision.estimate.t_overlap_ms:.1f} ms per cycle; "
        f"{decision.evaluations} T_c evaluations"
    )

    # 5. Execute the chosen configuration on the simulated network, and
    #    compare with two naive alternatives.
    def execute(processors, vector):
        net = paper_testbed()
        mmps = MMPS(net)
        procs = [net.processor(p.proc_id) for p in processors]
        return run_stencil(
            mmps, procs, vector, n, iterations=10, overlap=True
        ).elapsed_ms

    chosen = execute(decision.config.processors(), decision.vector)
    print(f"\nsimulated elapsed (chosen config):        {chosen:8.0f} ms")

    from repro import balanced_partition_vector

    one = resources[0].take(1)
    one_ms = execute(one, balanced_partition_vector([0.3], n))
    print(f"simulated elapsed (1 Sparc2, sequential): {one_ms:8.0f} ms")

    sparcs = resources[0].take(6)
    sparc_ms = execute(sparcs, balanced_partition_vector([0.3] * 6, n))
    print(f"simulated elapsed (6 Sparc2s):            {sparc_ms:8.0f} ms")

    assert chosen <= min(one_ms, sparc_ms) * 1.05, "partitioner should win"
    print("\nthe runtime partitioning decision is the fastest of the three.")


if __name__ == "__main__":
    main()
